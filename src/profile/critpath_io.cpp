// JSON serialization, the stdout attribution table and the metrics surface
// for CritPathReport.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "profile/critpath.hpp"

namespace aurora::profile {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

void append_attribution(std::ostringstream& os, const Attribution& a) {
  os << "{\"pe_compute\":" << a.pe_compute
     << ",\"noc_serialization\":" << a.noc_serialization
     << ",\"dram_service\":" << a.dram_service
     << ",\"dram_hit\":" << a.dram_hit << ",\"dram_miss\":" << a.dram_miss
     << ",\"dram_conflict\":" << a.dram_conflict
     << ",\"dram_other\":" << a.dram_other
     << ",\"reconfiguration\":" << a.reconfiguration
     << ",\"halo_barrier_wait\":" << a.halo_barrier_wait << "}";
}

void append_what_if(std::ostringstream& os,
                    const std::vector<WhatIfOutcome>& outcomes) {
  os << "[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"scenario\":\"" << escape(outcomes[i].scenario)
       << "\",\"total_cycles\":" << outcomes[i].total_cycles
       << ",\"speedup\":" << format_double(outcomes[i].speedup) << "}";
  }
  os << "]";
}

/// What-if outcomes ranked best-first (stable on ties, so scenario order
/// breaks them deterministically).
std::vector<const WhatIfOutcome*> ranked(
    const std::vector<WhatIfOutcome>& outcomes) {
  std::vector<const WhatIfOutcome*> order;
  order.reserve(outcomes.size());
  for (const WhatIfOutcome& o : outcomes) order.push_back(&o);
  std::stable_sort(order.begin(), order.end(),
                   [](const WhatIfOutcome* a, const WhatIfOutcome* b) {
                     return a->speedup > b->speedup;
                   });
  return order;
}

}  // namespace

std::string critpath_report_json(const CritPathReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"aurora.critpath.v1\""
     << ",\"truncated\":" << (report.truncated ? "true" : "false")
     << ",\"dropped_records\":" << report.dropped_records
     << ",\"total_cycles\":" << report.total_cycles << ",\"attribution\":";
  append_attribution(os, report.attribution);
  os << ",\"what_if\":";
  append_what_if(os, report.what_if);
  os << ",\"runs\":[";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const RunReport& run = report.runs[i];
    if (i > 0) os << ",";
    os << "{\"kind\":\""
       << (run.kind == sim::kRunKindChip ? "chip" : "cluster")
       << "\",\"units\":" << run.units
       << ",\"total_cycles\":" << run.total_cycles
       << ",\"bottleneck_chip\":" << run.bottleneck_chip
       << ",\"attribution\":";
    append_attribution(os, run.attribution);
    os << ",\"what_if\":";
    append_what_if(os, run.what_if);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string format_attribution_table(const CritPathReport& report) {
  std::ostringstream os;
  os << "critical path: " << report.runs.size() << " run(s), "
     << report.total_cycles << " cycles";
  if (report.truncated) {
    os << "  [TRUNCATED TRACE: " << report.dropped_records
       << " records dropped; suffix analysis only]";
  }
  os << "\n";

  AsciiTable table({"category", "cycles", "share"});
  const double total =
      report.total_cycles == 0 ? 1.0
                               : static_cast<double>(report.total_cycles);
  const auto share = [&](Cycle v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.1f%%",
                  100.0 * static_cast<double>(v) / total);
    return std::string(buf);
  };
  const Attribution& a = report.attribution;
  table.add_row({"pe-compute", std::to_string(a.pe_compute),
                 share(a.pe_compute)});
  table.add_row({"noc-serialization", std::to_string(a.noc_serialization),
                 share(a.noc_serialization)});
  table.add_row({"dram-service", std::to_string(a.dram_service),
                 share(a.dram_service)});
  table.add_row({"  dram row-hit", std::to_string(a.dram_hit),
                 share(a.dram_hit)});
  table.add_row({"  dram row-miss", std::to_string(a.dram_miss),
                 share(a.dram_miss)});
  table.add_row({"  dram row-conflict", std::to_string(a.dram_conflict),
                 share(a.dram_conflict)});
  if (a.dram_other > 0) {
    table.add_row({"  dram unattributed", std::to_string(a.dram_other),
                   share(a.dram_other)});
  }
  table.add_row({"reconfiguration", std::to_string(a.reconfiguration),
                 share(a.reconfiguration)});
  table.add_row({"halo-barrier-wait", std::to_string(a.halo_barrier_wait),
                 share(a.halo_barrier_wait)});
  table.add_row({"total", std::to_string(a.total()), share(a.total())});
  os << table.to_string();

  if (!report.what_if.empty()) {
    os << "what-if upgrade ranking:\n";
    AsciiTable ranking({"scenario", "cycles", "speedup"});
    for (const WhatIfOutcome* o : ranked(report.what_if)) {
      ranking.add_row({o->scenario, std::to_string(o->total_cycles),
                       format_double(o->speedup) + "x"});
    }
    os << ranking.to_string();
  }
  return os.str();
}

}  // namespace aurora::profile
