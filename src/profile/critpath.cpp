#include "profile/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <map>
#include <tuple>

#include "common/error.hpp"

namespace aurora::profile {
namespace {

using sim::TraceEvent;
using sim::TraceRecord;

/// A bandwidth/throughput upgrade divides the affected cycles.
Cycle scale_div(Cycle v, double factor) {
  return static_cast<Cycle>(
      std::llround(static_cast<double>(v) / factor));
}
/// A latency factor multiplies them.
Cycle scale_mul(Cycle v, double factor) {
  return static_cast<Cycle>(
      std::llround(static_cast<double>(v) * factor));
}

/// Deterministic proportional sub-split of a binding DRAM span by the row
/// buffer outcomes its requests saw; the conflict share takes the integer
/// remainder so the three parts always sum to the span.
void attribute_dram_span(Cycle dur, std::uint64_t hits, std::uint64_t misses,
                         std::uint64_t conflicts, Attribution& attr) {
  attr.dram_service += dur;
  const std::uint64_t total = hits + misses + conflicts;
  if (total == 0) {
    attr.dram_other += dur;
    return;
  }
  const auto share = [&](std::uint64_t part) {
    return static_cast<Cycle>(static_cast<double>(dur) *
                              (static_cast<double>(part) /
                               static_cast<double>(total)));
  };
  const Cycle hit = share(hits);
  const Cycle miss = share(misses);
  attr.dram_hit += hit;
  attr.dram_miss += miss;
  attr.dram_conflict += dur - hit - miss;
}

// ---- single-chip run model ------------------------------------------------
//
// The cycle engine's tile pipeline recurrence (see CycleEngine::run_layer):
//
//   load_done    = max(dram_free, compute_free) + load
//   dram_free'   = load_done + store
//   compute_free'= max(compute_free, load_done) + compute
//   total        = max(compute_free, dram_free) + reconfig_tail
//
// Each max() is a dependence-DAG join; the selected operand is the binding
// predecessor, so a backward walk from the larger terminal arm covers
// [0, total - reconfig_tail] contiguously.

struct TileModel {
  Cycle load = 0;
  Cycle store = 0;
  Cycle compute = 0;
  /// compute = pe_part + noc_part (NoC busy clamped to the window).
  Cycle pe_part = 0;
  Cycle noc_part = 0;
  std::uint64_t load_hits = 0, load_misses = 0, load_conflicts = 0;
  std::uint64_t store_hits = 0, store_misses = 0, store_conflicts = 0;
  bool has_load = false, has_store = false, has_compute = false;
};

struct ChipRunModel {
  std::vector<TileModel> tiles;
  Cycle reconfig_tail = 0;
  Cycle total = 0;

  [[nodiscard]] Cycle eval(const WhatIfScenario& s) const {
    Cycle dram_free = 0;
    Cycle compute_free = 0;
    for (const TileModel& t : tiles) {
      const Cycle load = scale_mul(t.load, s.dram_latency);
      const Cycle store = scale_mul(t.store, s.dram_latency);
      const Cycle compute = scale_div(t.pe_part, s.pe_throughput) +
                            scale_div(t.noc_part, s.noc_bw);
      const Cycle load_done = std::max(dram_free, compute_free) + load;
      dram_free = load_done + store;
      compute_free = std::max(compute_free, load_done) + compute;
    }
    return std::max(compute_free, dram_free) +
           scale_mul(reconfig_tail, s.reconfig_latency);
  }
};

void attribute_chip_run(const ChipRunModel& m, Attribution& attr) {
  attr.reconfiguration += m.reconfig_tail;
  const std::size_t n = m.tiles.size();
  if (n == 0) return;

  std::vector<Cycle> load_done(n), dram_free_at(n), compute_free_at(n);
  Cycle dram_free = 0;
  Cycle compute_free = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TileModel& t = m.tiles[i];
    load_done[i] = std::max(dram_free, compute_free) + t.load;
    dram_free = load_done[i] + t.store;
    compute_free = std::max(compute_free, load_done[i]) + t.compute;
    dram_free_at[i] = dram_free;
    compute_free_at[i] = compute_free;
  }

  enum class Arm : std::uint8_t { kCompute, kStore, kLoad };
  std::size_t i = n - 1;
  Arm arm =
      compute_free_at[i] >= dram_free_at[i] ? Arm::kCompute : Arm::kStore;
  for (;;) {
    const TileModel& t = m.tiles[i];
    if (arm == Arm::kStore) {
      // dram_free = load_done + store: the store rides right on the load.
      attribute_dram_span(t.store, t.store_hits, t.store_misses,
                          t.store_conflicts, attr);
      arm = Arm::kLoad;
    } else if (arm == Arm::kCompute) {
      attr.pe_compute += t.pe_part;
      attr.noc_serialization += t.noc_part;
      // start = max(compute_free[i-1], load_done[i]); ties bind the load.
      if (i == 0 || load_done[i] >= compute_free_at[i - 1]) {
        arm = Arm::kLoad;
      } else {
        --i;
      }
    } else {
      attribute_dram_span(t.load, t.load_hits, t.load_misses,
                          t.load_conflicts, attr);
      if (i == 0) break;  // tile 0's load starts the run at cycle 0
      --i;
      arm = dram_free_at[i] >= compute_free_at[i] ? Arm::kStore
                                                  : Arm::kCompute;
    }
  }
}

// ---- cluster run model ----------------------------------------------------
//
// Per chip and layer the proxy cadence is compute-pre, halo-wait,
// compute-post; compute-post releases at max(pre_end, last_arrival + 1) and
// a halo's last arrival is its send cycle (the sender's pre end) plus the
// route's observed flight. That gives the recurrence
//
//   pre_end(c,l)  = post_end(c,l-1) + pre(c,l)
//   release(c,l)  = max(pre_end(c,l),
//                       max over routes src->c at l:
//                           pre_end(src,l) + flight + 1)
//   post_end(c,l) = release(c,l) + post(c,l)
//   total         = max over c of post_end(c, L-1)
//
// which both the backward attribution walk and what-if re-weighting use.

struct ClusterLayerSeg {
  Cycle pre_at = 0, pre_dur = 0;
  Cycle wait_at = 0, wait_dur = 0;
  Cycle post_at = 0, post_dur = 0;
  /// Deterministic waterfall split of the pre segment from the enriched
  /// record: reconfiguration, then DRAM, then NoC, remainder PE — each
  /// clamped so the parts sum to pre_dur exactly.
  Cycle reconfig_part = 0, dram_part = 0, noc_part = 0, pe_part = 0;
  std::uint8_t seen = 0;  // cadence progress while parsing (0..3)
};

struct RouteModel {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t layer = 0;
  Cycle send_at = 0;
  Cycle last_delivery = 0;
};

struct ClusterRunModel {
  /// [chip][layer].
  std::vector<std::vector<ClusterLayerSeg>> chips;
  std::vector<RouteModel> routes;
  Cycle total = 0;

  [[nodiscard]] Cycle eval(const WhatIfScenario& s) const {
    const std::size_t n = chips.size();
    const std::size_t num_layers = n == 0 ? 0 : chips[0].size();
    std::vector<Cycle> post_end(n, 0);
    std::vector<Cycle> pre_end(n, 0);
    for (std::size_t l = 0; l < num_layers; ++l) {
      for (std::size_t c = 0; c < n; ++c) {
        const ClusterLayerSeg& seg = chips[c][l];
        const Cycle pre = scale_mul(seg.reconfig_part, s.reconfig_latency) +
                          scale_mul(seg.dram_part, s.dram_latency) +
                          scale_div(seg.noc_part, s.noc_bw) +
                          scale_div(seg.pe_part, s.pe_throughput);
        pre_end[c] = post_end[c] + pre;
      }
      for (std::size_t c = 0; c < n; ++c) {
        Cycle release = pre_end[c];
        for (const RouteModel& r : routes) {
          if (r.dst != c || r.layer != l) continue;
          const Cycle flight =
              scale_div(r.last_delivery - r.send_at, s.link_bw);
          release = std::max(release, pre_end[r.src] + flight + 1);
        }
        post_end[c] =
            release + scale_div(chips[c][l].post_dur, s.pe_throughput);
      }
    }
    Cycle total_cycles = 0;
    for (const Cycle t : post_end) total_cycles = std::max(total_cycles, t);
    return total_cycles;
  }
};

void attribute_cluster_run(const ClusterRunModel& m, Attribution& attr,
                           std::uint32_t& bottleneck_chip) {
  const std::size_t n = m.chips.size();
  if (n == 0) return;
  const std::size_t num_layers = m.chips[0].size();
  if (num_layers == 0) return;

  std::size_t c = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const auto finish = [&](std::size_t chip) {
      const ClusterLayerSeg& last = m.chips[chip][num_layers - 1];
      return last.post_at + last.post_dur;
    };
    if (finish(i) > finish(c)) c = i;
  }
  bottleneck_chip = static_cast<std::uint32_t>(c);

  std::size_t l = num_layers - 1;
  bool at_post = true;
  for (;;) {
    const ClusterLayerSeg& seg = m.chips[c][l];
    if (at_post) {
      // Compute-post is the vertex-update replay: pure chip compute.
      attr.pe_compute += seg.post_dur;
      if (seg.wait_dur == 0) {
        at_post = false;  // released by this chip's own pre segment
        continue;
      }
      // The barrier released at last_arrival + 1: bind the route whose
      // final delivery forced it and jump to the sending chip, charging
      // the send-to-release interval (serialization + flight + release)
      // to the halo barrier.
      const Cycle release = seg.wait_at + seg.wait_dur;
      const RouteModel* binding = nullptr;
      for (const RouteModel& r : m.routes) {
        if (r.dst != c || r.layer != l) continue;
        if (r.last_delivery + 1 != release) continue;
        if (binding == nullptr || r.src < binding->src) binding = &r;
      }
      AURORA_CHECK_MSG(binding != nullptr,
                       "halo-wait release at cycle "
                           << release << " has no matching delivery (chip "
                           << c << ", layer " << l << ")");
      AURORA_CHECK(release >= binding->send_at);
      attr.halo_barrier_wait += release - binding->send_at;
      c = binding->src;
      at_post = false;
    } else {
      attr.reconfiguration += seg.reconfig_part;
      attribute_dram_span(seg.dram_part, 0, 0, 0, attr);
      attr.noc_serialization += seg.noc_part;
      attr.pe_compute += seg.pe_part;
      if (l == 0) {
        AURORA_CHECK_MSG(seg.pre_at == 0,
                         "cluster critical path does not reach cycle 0");
        break;
      }
      --l;
      at_post = true;
    }
  }
}

// ---- trace parsing --------------------------------------------------------

struct RunModel {
  std::uint64_t kind = sim::kRunKindChip;
  std::uint64_t units = 0;
  ChipRunModel chip;
  ClusterRunModel cluster;

  [[nodiscard]] Cycle total() const {
    return kind == sim::kRunKindChip ? chip.total : cluster.total;
  }
  [[nodiscard]] Cycle eval(const WhatIfScenario& s) const {
    return kind == sim::kRunKindChip ? chip.eval(s) : cluster.eval(s);
  }
};

/// Parse one kRunBegin..kRunEnd slice [begin, end) (end points at the
/// kRunEnd record) into the matching model.
RunModel parse_run(const std::deque<TraceRecord>& recs, std::size_t begin,
                   std::size_t end) {
  RunModel model;
  const TraceRecord& head = recs[begin];
  model.kind = head.arg0;
  model.units = head.arg1;
  const TraceRecord& tail = recs[end];

  if (model.kind == sim::kRunKindChip) {
    model.chip.total = tail.arg0;
    model.chip.reconfig_tail = tail.arg1;
    for (std::size_t i = begin + 1; i < end; ++i) {
      const TraceRecord& r = recs[i];
      switch (r.kind) {
        case TraceEvent::kTileStart:
          model.chip.tiles.emplace_back();
          break;
        case TraceEvent::kDramSpan: {
          AURORA_CHECK_MSG(!model.chip.tiles.empty(),
                           "dram-span before the first tile-start");
          TileModel& t = model.chip.tiles.back();
          AURORA_CHECK_MSG(!t.has_store,
                           "more than two dram-spans in one tile");
          if (!t.has_load) {
            t.has_load = true;
            t.load = r.arg1;
            t.load_hits = r.arg2;
            t.load_misses = sim::unpack_u32_hi(r.arg3);
            t.load_conflicts = sim::unpack_u32_lo(r.arg3);
          } else {
            t.has_store = true;
            t.store = r.arg1;
            t.store_hits = r.arg2;
            t.store_misses = sim::unpack_u32_hi(r.arg3);
            t.store_conflicts = sim::unpack_u32_lo(r.arg3);
          }
          break;
        }
        case TraceEvent::kComputeSpan: {
          AURORA_CHECK_MSG(!model.chip.tiles.empty(),
                           "compute-span before the first tile-start");
          TileModel& t = model.chip.tiles.back();
          AURORA_CHECK_MSG(!t.has_compute,
                           "two compute-spans in one tile");
          t.has_compute = true;
          t.compute = r.arg1;
          t.noc_part = std::min<Cycle>(r.arg2, r.arg1);
          t.pe_part = t.compute - t.noc_part;
          break;
        }
        default:
          break;  // packet/task/phase/request detail is not load-bearing
      }
    }
    AURORA_CHECK_MSG(model.chip.tiles.size() == model.units,
                     "chip run recorded " << model.chip.tiles.size()
                                          << " tiles, expected "
                                          << model.units);
    for (const TileModel& t : model.chip.tiles) {
      AURORA_CHECK_MSG(t.has_load && t.has_compute && t.has_store,
                       "tile missing a load/compute/store span");
    }
    AURORA_CHECK_MSG(model.chip.eval(WhatIfScenario{}) == model.chip.total,
                     "chip dependence model does not reproduce the "
                     "recorded total ("
                         << model.chip.eval(WhatIfScenario{}) << " != "
                         << model.chip.total << ")");
    return model;
  }

  AURORA_CHECK_MSG(model.kind == sim::kRunKindCluster,
                   "unknown run kind " << model.kind);
  model.cluster.total = tail.arg0;
  model.cluster.chips.resize(model.units);
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           RouteModel>
      routes;
  for (std::size_t i = begin + 1; i < end; ++i) {
    const TraceRecord& r = recs[i];
    switch (r.kind) {
      case TraceEvent::kClusterSegment: {
        const std::uint64_t chip = r.arg0 / 4;
        const std::uint64_t seg_kind = r.arg0 % 4;
        AURORA_CHECK_MSG(chip < model.units && seg_kind < 3,
                         "malformed cluster-segment arg0 " << r.arg0);
        auto& layers = model.cluster.chips[chip];
        if (seg_kind == 0) layers.emplace_back();
        AURORA_CHECK_MSG(!layers.empty() &&
                             layers.back().seen == seg_kind,
                         "cluster segment cadence broken on chip " << chip);
        ClusterLayerSeg& seg = layers.back();
        ++seg.seen;
        if (seg_kind == 0) {
          seg.pre_at = r.at;
          seg.pre_dur = r.arg1;
          // Waterfall the enriched chip-local breakdown over the segment.
          seg.reconfig_part =
              std::min<Cycle>(sim::unpack_u32_lo(r.arg3), seg.pre_dur);
          seg.dram_part =
              std::min<Cycle>(r.arg2, seg.pre_dur - seg.reconfig_part);
          seg.noc_part = std::min<Cycle>(
              sim::unpack_u32_hi(r.arg3),
              seg.pre_dur - seg.reconfig_part - seg.dram_part);
          seg.pe_part = seg.pre_dur - seg.reconfig_part - seg.dram_part -
                        seg.noc_part;
        } else if (seg_kind == 1) {
          seg.wait_at = r.at;
          seg.wait_dur = r.arg1;
        } else {
          seg.post_at = r.at;
          seg.post_dur = r.arg1;
        }
        break;
      }
      case TraceEvent::kHaloSent: {
        const auto key = std::make_tuple(
            static_cast<std::uint32_t>(r.arg0 / 256),
            static_cast<std::uint32_t>(r.arg0 % 256),
            static_cast<std::uint32_t>(r.arg2));
        auto [it, inserted] = routes.try_emplace(key);
        if (inserted) {
          it->second.src = std::get<0>(key);
          it->second.dst = std::get<1>(key);
          it->second.layer = std::get<2>(key);
          it->second.send_at = r.at;
        }
        AURORA_CHECK_MSG(it->second.send_at == r.at,
                         "halo chunks of one route sent at different "
                         "cycles");
        break;
      }
      case TraceEvent::kHaloDelivered: {
        const auto key = std::make_tuple(
            static_cast<std::uint32_t>(r.arg0 / 256),
            static_cast<std::uint32_t>(r.arg0 % 256),
            static_cast<std::uint32_t>(r.arg2));
        const auto it = routes.find(key);
        AURORA_CHECK_MSG(it != routes.end(),
                         "halo delivery without a matching send");
        it->second.last_delivery =
            std::max(it->second.last_delivery, r.at);
        break;
      }
      default:
        break;
    }
  }
  std::size_t num_layers = 0;
  for (std::size_t c = 0; c < model.units; ++c) {
    const auto& layers = model.cluster.chips[c];
    if (c == 0) num_layers = layers.size();
    AURORA_CHECK_MSG(layers.size() == num_layers && !layers.empty(),
                     "chips recorded different layer counts");
    for (const ClusterLayerSeg& seg : layers) {
      AURORA_CHECK_MSG(seg.seen == 3, "chip " << c
                                              << " has a partial layer "
                                                 "cadence");
    }
  }
  model.cluster.routes.reserve(routes.size());
  for (auto& [key, route] : routes) {
    AURORA_CHECK_MSG(route.last_delivery >= route.send_at,
                     "halo route never delivered");
    model.cluster.routes.push_back(route);
  }
  AURORA_CHECK_MSG(
      model.cluster.eval(WhatIfScenario{}) == model.cluster.total,
      "cluster dependence model does not reproduce the recorded total ("
          << model.cluster.eval(WhatIfScenario{}) << " != "
          << model.cluster.total << ")");
  return model;
}

}  // namespace

Attribution& Attribution::operator+=(const Attribution& o) {
  pe_compute += o.pe_compute;
  noc_serialization += o.noc_serialization;
  dram_service += o.dram_service;
  reconfiguration += o.reconfiguration;
  halo_barrier_wait += o.halo_barrier_wait;
  dram_hit += o.dram_hit;
  dram_miss += o.dram_miss;
  dram_conflict += o.dram_conflict;
  dram_other += o.dram_other;
  return *this;
}

CritPathReport analyze_critical_path(const sim::Tracer& tracer,
                                     const AnalyzeOptions& options) {
  CritPathReport report;
  report.dropped_records = tracer.dropped();
  if (report.dropped_records > 0) {
    if (!options.allow_truncated) {
      throw Error("critical-path analysis refused: the trace ring buffer "
                  "dropped " +
                  std::to_string(report.dropped_records) +
                  " records (raise the tracer capacity or pass "
                  "allow_truncated to analyze the suffix)");
    }
    report.truncated = true;
  }

  const std::deque<TraceRecord>& recs = tracer.records();
  std::size_t i = 0;
  if (report.truncated) {
    // Eviction drops the oldest records, so everything from the first
    // surviving kRunBegin onward is a contiguous, fully recorded suffix.
    while (i < recs.size() && recs[i].kind != TraceEvent::kRunBegin) ++i;
  }

  std::vector<RunModel> models;
  while (i < recs.size()) {
    AURORA_CHECK_MSG(recs[i].kind == TraceEvent::kRunBegin,
                     "expected a run-begin record, found "
                         << sim::trace_event_name(recs[i].kind));
    std::size_t end = i + 1;
    while (end < recs.size() && recs[end].kind != TraceEvent::kRunEnd) {
      AURORA_CHECK_MSG(recs[end].kind != TraceEvent::kRunBegin,
                       "nested run-begin record");
      ++end;
    }
    if (end == recs.size()) {
      if (!options.allow_truncated) {
        throw Error("critical-path analysis refused: the trace ends inside "
                    "a run (no run-end record)");
      }
      report.truncated = true;
      break;
    }
    models.push_back(parse_run(recs, i, end));
    i = end + 1;
  }

  for (const RunModel& model : models) {
    RunReport run;
    run.kind = model.kind;
    run.units = model.units;
    run.total_cycles = model.total();
    if (model.kind == sim::kRunKindChip) {
      attribute_chip_run(model.chip, run.attribution);
    } else {
      attribute_cluster_run(model.cluster, run.attribution,
                            run.bottleneck_chip);
    }
    AURORA_CHECK_MSG(run.attribution.total() == run.total_cycles,
                     "critical-path attribution ("
                         << run.attribution.total()
                         << ") does not sum to the run total ("
                         << run.total_cycles << ")");
    for (const WhatIfScenario& s : options.scenarios) {
      WhatIfOutcome outcome;
      outcome.scenario = s.label;
      outcome.total_cycles = model.eval(s);
      outcome.speedup =
          outcome.total_cycles == 0
              ? 1.0
              : static_cast<double>(run.total_cycles) /
                    static_cast<double>(outcome.total_cycles);
      run.what_if.push_back(std::move(outcome));
    }
    report.total_cycles += run.total_cycles;
    report.attribution += run.attribution;
    report.runs.push_back(std::move(run));
  }

  for (std::size_t s = 0; s < options.scenarios.size(); ++s) {
    WhatIfOutcome outcome;
    outcome.scenario = options.scenarios[s].label;
    for (const RunReport& run : report.runs) {
      outcome.total_cycles += run.what_if[s].total_cycles;
    }
    outcome.speedup = outcome.total_cycles == 0
                          ? 1.0
                          : static_cast<double>(report.total_cycles) /
                                static_cast<double>(outcome.total_cycles);
    report.what_if.push_back(std::move(outcome));
  }
  return report;
}

// ---- what-if parsing ------------------------------------------------------

WhatIfScenario parse_what_if(const std::string& spec) {
  WhatIfScenario scenario;
  scenario.label = spec;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string knob = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = knob.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= knob.size()) {
      throw Error("bad what-if knob '" + knob +
                  "' (expected name=<factor>x)");
    }
    const std::string name = knob.substr(0, eq);
    std::string value = knob.substr(eq + 1);
    if (!value.empty() && (value.back() == 'x' || value.back() == 'X')) {
      value.pop_back();
    }
    double factor = 0.0;
    try {
      std::size_t used = 0;
      factor = std::stod(value, &used);
      if (used != value.size()) throw Error("trailing junk");
    } catch (const std::exception&) {
      throw Error("bad what-if factor in '" + knob +
                  "' (expected name=<factor>x)");
    }
    if (!(factor > 0.0)) {
      throw Error("what-if factor must be positive in '" + knob + "'");
    }
    if (name == "pe_throughput") {
      scenario.pe_throughput = factor;
    } else if (name == "noc_bw") {
      scenario.noc_bw = factor;
    } else if (name == "dram_latency") {
      scenario.dram_latency = factor;
    } else if (name == "link_bw") {
      scenario.link_bw = factor;
    } else if (name == "reconfig_latency") {
      scenario.reconfig_latency = factor;
    } else {
      throw Error("unknown what-if knob '" + name +
                  "' (knobs: pe_throughput, noc_bw, dram_latency, link_bw, "
                  "reconfig_latency)");
    }
  }
  return scenario;
}

std::vector<WhatIfScenario> parse_what_if_list(const std::string& spec) {
  std::vector<WhatIfScenario> scenarios;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string one = spec.substr(pos, semi - pos);
    if (!one.empty()) scenarios.push_back(parse_what_if(one));
    if (semi == spec.size()) break;
    pos = semi + 1;
  }
  return scenarios;
}

std::vector<WhatIfScenario> default_what_if_scenarios() {
  return {parse_what_if("pe_throughput=2x"), parse_what_if("noc_bw=2x"),
          parse_what_if("dram_latency=0.5x"), parse_what_if("link_bw=2x"),
          parse_what_if("reconfig_latency=0.5x")};
}

void register_critpath_metrics(MetricsRegistry& registry,
                               const CritPathReport& report) {
  const auto scope = registry.scope("profile.critpath");
  const auto value = [](Cycle v) {
    return MetricsRegistry::Probe(
        [v] { return static_cast<double>(v); });
  };
  scope.counter("total_cycles", value(report.total_cycles));
  scope.counter("runs", value(report.runs.size()));
  scope.counter("pe_compute_cycles", value(report.attribution.pe_compute));
  scope.counter("noc_serialization_cycles",
                value(report.attribution.noc_serialization));
  scope.counter("dram_service_cycles",
                value(report.attribution.dram_service));
  scope.counter("dram_hit_cycles", value(report.attribution.dram_hit));
  scope.counter("dram_miss_cycles", value(report.attribution.dram_miss));
  scope.counter("dram_conflict_cycles",
                value(report.attribution.dram_conflict));
  scope.counter("reconfiguration_cycles",
                value(report.attribution.reconfiguration));
  scope.counter("halo_barrier_wait_cycles",
                value(report.attribution.halo_barrier_wait));
  registry.add_counter("trace.dropped_records",
                       value(report.dropped_records));
}

void export_critpath_counters(const CritPathReport& report,
                              CounterSet& counters) {
  counters.inc("profile.critpath.total_cycles", report.total_cycles);
  counters.inc("profile.critpath.runs", report.runs.size());
  counters.inc("profile.critpath.pe_compute_cycles",
               report.attribution.pe_compute);
  counters.inc("profile.critpath.noc_serialization_cycles",
               report.attribution.noc_serialization);
  counters.inc("profile.critpath.dram_service_cycles",
               report.attribution.dram_service);
  counters.inc("profile.critpath.reconfiguration_cycles",
               report.attribution.reconfiguration);
  counters.inc("profile.critpath.halo_barrier_wait_cycles",
               report.attribution.halo_barrier_wait);
  // trace.dropped_records is NOT exported here: drivers publish it
  // unconditionally from the tracer (it matters whether or not a
  // critical-path analysis ran), and exporting it twice would double-count.
}

}  // namespace aurora::profile
