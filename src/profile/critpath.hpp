// Post-run critical-path analysis over Tracer records.
//
// The cycle engine and the cluster engine both compose their timelines from
// explicit dependence rules (the tile load/compute/store pipeline
// recurrence; the per-layer compute-pre / halo-barrier / compute-post chip
// cadence). The enriched trace records carry enough of those rules to
// rebuild the dependence DAG after the run, walk the binding (longest)
// path from cycle 0 to the finish cycle, and attribute every cycle of
// end-to-end latency to one canonical category:
//
//   pe-compute         PE task execution on the binding compute windows
//   noc-serialization  on-chip network busy cycles inside those windows
//   dram-service       DRAM streaming on the binding load/store spans,
//                      sub-split by row hit / miss / conflict shares
//   reconfiguration    the exposed (non-overlapped) reconfiguration tail
//   halo-barrier-wait  inter-chip link flight + barrier release on binding
//                      halo exchanges (cluster runs)
//
// The walk is exact: category cycles sum to the run's total cycles with no
// residue, which the analyzer asserts. On top of the same models, what-if
// re-weighting rescales edge weights (PE throughput, NoC bandwidth, DRAM
// latency, link bandwidth, reconfiguration latency) and re-evaluates the
// recurrences to rank hypothetical hardware upgrades without re-simulating.
//
// A trace may hold several runs back to back (multi-layer jobs, serving
// queues); each is delimited by kRunBegin/kRunEnd and analyzed on its own
// run-local cycle axis, then aggregated. Serial and parallel cluster runs
// merge to bit-identical traces, so their reports are bit-identical too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics_registry.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/trace.hpp"

namespace aurora::profile {

/// Critical-path cycles by category. The five top-level categories sum to
/// the attributed total exactly; the dram_* fields sub-split dram_service
/// (dram_other absorbs spans whose trace lacked row-state counts).
struct Attribution {
  Cycle pe_compute = 0;
  Cycle noc_serialization = 0;
  Cycle dram_service = 0;
  Cycle reconfiguration = 0;
  Cycle halo_barrier_wait = 0;

  Cycle dram_hit = 0;
  Cycle dram_miss = 0;
  Cycle dram_conflict = 0;
  Cycle dram_other = 0;

  [[nodiscard]] Cycle total() const {
    return pe_compute + noc_serialization + dram_service + reconfiguration +
           halo_barrier_wait;
  }
  Attribution& operator+=(const Attribution& o);
};

/// One hypothetical hardware change-set. Factors are resource improvements
/// in the direction their name implies: *_throughput / *_bw factors divide
/// the affected cycles (2.0 = twice the bandwidth), *_latency factors
/// multiply them (0.5 = half the latency). 1.0 everywhere is the identity
/// and must reproduce the observed totals exactly.
struct WhatIfScenario {
  std::string label = "baseline";
  double pe_throughput = 1.0;
  double noc_bw = 1.0;
  double dram_latency = 1.0;
  double link_bw = 1.0;
  double reconfig_latency = 1.0;
};

/// Parse "knob=<factor>x[,knob=<factor>x...]" (e.g. "link_bw=2x" or
/// "dram_latency=0.5x,noc_bw=2x") into one scenario labeled by the spec.
/// Knob names match the WhatIfScenario fields; factors must be positive.
[[nodiscard]] WhatIfScenario parse_what_if(const std::string& spec);
/// Parse a ';'-separated list of scenario specs.
[[nodiscard]] std::vector<WhatIfScenario> parse_what_if_list(
    const std::string& spec);
/// One single-knob upgrade per knob: pe_throughput=2x, noc_bw=2x,
/// dram_latency=0.5x, link_bw=2x, reconfig_latency=0.5x.
[[nodiscard]] std::vector<WhatIfScenario> default_what_if_scenarios();

/// Re-evaluated end-to-end cycles under one scenario.
struct WhatIfOutcome {
  std::string scenario;
  Cycle total_cycles = 0;
  /// Observed cycles / re-weighted cycles (> 1 means the upgrade helps).
  double speedup = 1.0;
};

/// Critical-path analysis of one kRunBegin..kRunEnd slice.
struct RunReport {
  /// sim::kRunKindChip or sim::kRunKindCluster.
  std::uint64_t kind = sim::kRunKindChip;
  /// Tiles (chip runs) or chips (cluster runs).
  std::uint64_t units = 0;
  Cycle total_cycles = 0;
  /// The chip whose finish bounds the cluster makespan (0 for chip runs).
  std::uint32_t bottleneck_chip = 0;
  Attribution attribution;
  std::vector<WhatIfOutcome> what_if;
};

struct CritPathReport {
  /// True when the analyzed trace was incomplete (ring-buffer eviction or a
  /// trailing unterminated run); only fully-recorded runs are analyzed.
  bool truncated = false;
  /// Tracer ring-buffer evictions at analysis time.
  std::uint64_t dropped_records = 0;
  /// Sum of the analyzed runs' total cycles (runs are sequential; serving
  /// level inter-request overlap is outside the traced engine runs).
  Cycle total_cycles = 0;
  Attribution attribution;
  std::vector<RunReport> runs;
  /// Aggregated across runs, in scenario order.
  std::vector<WhatIfOutcome> what_if;
};

struct AnalyzeOptions {
  /// Analyze a truncated trace anyway (suffix runs only, report flagged)
  /// instead of refusing with an error.
  bool allow_truncated = false;
  /// What-if scenarios to evaluate (empty = none).
  std::vector<WhatIfScenario> scenarios;
};

/// Analyze every complete run recorded in `tracer`. Throws common::Error on
/// truncated or malformed traces unless options.allow_truncated is set.
[[nodiscard]] CritPathReport analyze_critical_path(
    const sim::Tracer& tracer, const AnalyzeOptions& options = {});

/// Report as stable-key-order JSON ("aurora.critpath.v1" schema).
[[nodiscard]] std::string critpath_report_json(const CritPathReport& report);

/// Human-readable attribution table (plus the what-if ranking when
/// scenarios were evaluated).
[[nodiscard]] std::string format_attribution_table(
    const CritPathReport& report);

/// Publish "profile.critpath.*" (and "trace.dropped_records") entries. The
/// probes copy their values out of `report`, so the registry does not need
/// the report to stay alive.
void register_critpath_metrics(MetricsRegistry& registry,
                               const CritPathReport& report);

/// Merge the report into a CounterSet under the same "profile.critpath.*"
/// names, so run reports and bench grids pick the attribution up for free.
void export_critpath_counters(const CritPathReport& report,
                              CounterSet& counters);

}  // namespace aurora::profile
