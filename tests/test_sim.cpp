// Unit tests for the cycle-driven simulation kernel.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/metrics_registry.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/perfetto.hpp"
#include "sim/sampler.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace aurora::sim {
namespace {

/// Component that stays busy for a fixed number of ticks.
class BusyFor final : public Component {
 public:
  explicit BusyFor(Cycle busy) : Component("busy"), remaining_(busy) {}
  void tick(Cycle now) override {
    last_tick_ = now;
    ++ticks_;
    if (remaining_ > 0) --remaining_;
  }
  [[nodiscard]] bool idle() const override { return remaining_ == 0; }

  Cycle last_tick_ = 0;
  Cycle ticks_ = 0;

 private:
  Cycle remaining_;
};

TEST(Simulator, StartsAtCycleZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.all_idle());
}

TEST(Simulator, StepAdvancesClockAndTicksComponents) {
  Simulator s;
  BusyFor c(3);
  s.add(&c);
  s.step();
  EXPECT_EQ(s.now(), 1u);
  EXPECT_EQ(c.ticks_, 1u);
  EXPECT_EQ(c.last_tick_, 0u);
}

TEST(Simulator, RunUntilIdleStopsExactlyWhenDrained) {
  Simulator s;
  BusyFor c(5);
  s.add(&c);
  const Cycle end = s.run_until_idle(100);
  EXPECT_EQ(end, 5u);
  EXPECT_TRUE(s.all_idle());
}

TEST(Simulator, RunUntilIdleWaitsForSlowestComponent) {
  Simulator s;
  BusyFor fast(2), slow(9);
  s.add(&fast);
  s.add(&slow);
  EXPECT_EQ(s.run_until_idle(100), 9u);
}

TEST(Simulator, DeadlockGuardThrows) {
  /// Component that is never idle.
  class Stuck final : public Component {
   public:
    Stuck() : Component("stuck") {}
    void tick(Cycle) override {}
    [[nodiscard]] bool idle() const override { return false; }
  };
  Simulator s;
  Stuck c;
  s.add(&c);
  EXPECT_THROW(s.run_until_idle(50), Error);
}

TEST(Simulator, RunCyclesIgnoresIdleness) {
  Simulator s;
  BusyFor c(1);
  s.add(&c);
  s.run_cycles(10);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_EQ(c.ticks_, 10u);
}

TEST(Simulator, RejectsNullComponent) {
  Simulator s;
  EXPECT_THROW(s.add(nullptr), Error);
}

// ------------------------------------------------- event-driven fast-forward

/// Component with one scheduled event: ticks are no-ops until `fire_at`,
/// where it does one unit of work. Counts every tick and skipped cycle so
/// tests can see exactly what the scheduler did.
class FiresAt final : public Component {
 public:
  explicit FiresAt(Cycle fire_at) : Component("fires-at"), fire_at_(fire_at) {}
  void tick(Cycle now) override {
    ++ticks_;
    if (pending_ && now >= fire_at_) pending_ = false;
  }
  [[nodiscard]] bool idle() const override { return !pending_; }
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override {
    if (!pending_) return kNoEvent;
    return std::max(now, fire_at_);
  }
  void skip_cycles(Cycle from, Cycle to) override { skipped_ += to - from; }
  void rearm(Cycle fire_at) {
    fire_at_ = fire_at;
    pending_ = true;
    wake();
  }

  Cycle ticks_ = 0;
  Cycle skipped_ = 0;

 private:
  Cycle fire_at_;
  bool pending_ = true;
};

TEST(FastForward, JumpsOverDeadCyclesWithoutTickingThem) {
  Simulator s;
  FiresAt c(1000);
  s.add(&c);
  EXPECT_EQ(s.run_until_idle(10'000), 1001u);
  // Tick at 0, jump to 1000, tick there: two ticks for 1001 cycles.
  EXPECT_EQ(c.ticks_, 2u);
  EXPECT_EQ(c.skipped_, 999u);
  EXPECT_EQ(s.cycles_skipped(), 999u);
}

TEST(FastForward, DisabledModeTicksEveryCycle) {
  Simulator s;
  s.set_fast_forward(false);
  FiresAt c(1000);
  s.add(&c);
  EXPECT_EQ(s.run_until_idle(10'000), 1001u);
  EXPECT_EQ(c.ticks_, 1001u);
  EXPECT_EQ(s.cycles_skipped(), 0u);
}

TEST(FastForward, EndCycleMatchesLockstepExactly) {
  for (Cycle fire : {0u, 1u, 2u, 7u, 63u, 5000u}) {
    Simulator ff, ls;
    ls.set_fast_forward(false);
    FiresAt a(fire), b(fire);
    ff.add(&a);
    ls.add(&b);
    EXPECT_EQ(ff.run_until_idle(100'000), ls.run_until_idle(100'000))
        << "fire_at=" << fire;
  }
}

TEST(FastForward, LegacyComponentPinsTheClock) {
  // A lockstep-default component ("tick me every cycle") must prevent jumps
  // even when an event-aware peer sees its next event far away.
  Simulator s;
  FiresAt aware(500);
  BusyFor legacy(200);
  s.add(&aware);
  s.add(&legacy);
  s.run_until_idle(10'000);
  // No jumps while the legacy component was busy; after it drains it reports
  // kNoEvent via... it doesn't — BusyFor keeps the default next_event_cycle,
  // so it pins the clock right up to cycle 500. Everything stays lockstep.
  EXPECT_EQ(aware.ticks_, 501u);
  EXPECT_EQ(s.cycles_skipped(), 0u);
}

TEST(FastForward, QuiescentComponentRetiresAndWakes) {
  Simulator s;
  FiresAt a(3), b(10);
  s.add(&a);
  s.add(&b);
  s.run_until_idle(1000);
  const Cycle a_ticks_after_drain = a.ticks_;
  // a drained at cycle 3 and reported kNoEvent: it must not be ticked while
  // b finishes out (cycles 4..10 are jumped or ticked only on b).
  EXPECT_LE(a_ticks_after_drain, 3u);

  // wake() re-enters the tick loop: rearm and run again on the same sim.
  a.rearm(s.now() + 50);
  EXPECT_FALSE(s.all_idle());
  s.run_until_idle(1000);
  EXPECT_TRUE(s.all_idle());
  EXPECT_GT(a.ticks_, a_ticks_after_drain);
}

TEST(FastForward, DeadlineStillTripsUnderFastForward) {
  /// Never idle, but always claims its next event is far away — a livelocked
  /// component must still hit the deadline guard, clamped like lockstep.
  class Stalled final : public Component {
   public:
    Stalled() : Component("stalled") {}
    void tick(Cycle) override {}
    [[nodiscard]] bool idle() const override { return false; }
    [[nodiscard]] Cycle next_event_cycle(Cycle now) const override {
      return now + 1'000'000;
    }
  };
  Simulator s;
  Stalled c;
  s.add(&c);
  EXPECT_THROW(s.run_until_idle(500), Error);
  EXPECT_LE(s.now(), 500u);
}

TEST(FastForward, SkipCyclesSpansExactlyTheJumpedRange) {
  Simulator s;
  FiresAt a(100), b(40);
  s.add(&a);
  s.add(&b);
  s.run_until_idle(1000);
  // Jumps: 1 -> 40 (b's event), then 41 -> 100 (a's event, b now quiescent).
  EXPECT_EQ(s.now(), 101u);
  EXPECT_EQ(a.skipped_, 98u);
  EXPECT_EQ(s.cycles_skipped(), 98u);
}


// ------------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultAndDropsEvents) {
  Tracer t;
  t.record(5, TraceEvent::kDramRequest, 1, 2);
  EXPECT_EQ(t.size(), 0u);
  t.enable();
  t.record(5, TraceEvent::kDramRequest, 1, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.count(TraceEvent::kDramRequest), 1u);
  EXPECT_EQ(t.count(TraceEvent::kTileStart), 0u);
}

TEST(Tracer, TimelineRendersOneRowPerActiveKind) {
  Tracer t;
  t.enable();
  for (Cycle c = 0; c < 100; c += 10) {
    t.record(c, TraceEvent::kPacketInjected, 0, 0);
  }
  t.record(50, TraceEvent::kReconfigure, 0, 0);
  const std::string timeline = t.render_timeline(20);
  EXPECT_NE(timeline.find("packet-injected"), std::string::npos);
  EXPECT_NE(timeline.find("reconfigure"), std::string::npos);
  EXPECT_EQ(timeline.find("dram-request"), std::string::npos);
  EXPECT_NE(timeline.find("10 events"), std::string::npos);
}

TEST(Tracer, EmptyTimeline) {
  Tracer t;
  EXPECT_EQ(t.render_timeline(), "(empty trace)\n");
}

TEST(Tracer, CsvOutput) {
  Tracer t;
  t.enable();
  t.record(3, TraceEvent::kTileStart, 7, 8);
  t.record(5, TraceEvent::kDramSpan, 1, 2, 3, 4);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "cycle,event,arg0,arg1,arg2,arg3\n"
            "3,tile-start,7,8,0,0\n"
            "5,dram-span,1,2,3,4\n");
}

TEST(Tracer, ClearResets) {
  Tracer t;
  t.enable();
  t.record(1, TraceEvent::kTaskComplete);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, RingBufferEvictsOldestAndCountsDrops) {
  Tracer t;
  t.enable();
  t.set_capacity(4);
  for (Cycle c = 0; c < 10; ++c) {
    t.record(c, TraceEvent::kTaskComplete, c, 0);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // A suffix trace survives: the oldest records were evicted.
  EXPECT_EQ(t.records().front().at, 6u);
  EXPECT_EQ(t.records().back().at, 9u);
  // CSV output stays stable over the retained records.
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "cycle,event,arg0,arg1,arg2,arg3\n"
            "6,task-complete,6,0,0,0\n7,task-complete,7,0,0,0\n"
            "8,task-complete,8,0,0,0\n9,task-complete,9,0,0,0\n");
  t.clear();
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_THROW(t.set_capacity(0), Error);
}

TEST(Tracer, ShrinkingCapacityEvictsImmediately) {
  Tracer t;
  t.enable();
  for (Cycle c = 0; c < 8; ++c) t.record(c, TraceEvent::kTaskComplete);
  t.set_capacity(3);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 5u);
  EXPECT_EQ(t.records().front().at, 5u);
}

// ------------------------------------------------------------------ sampler

TEST(Sampler, SamplesAtIntervalBoundaries) {
  Simulator s;
  s.set_fast_forward(false);
  BusyFor busy(10);
  Sampler sampler(4);
  sampler.watch("ticks", [&busy] { return static_cast<double>(busy.ticks_); });
  s.add(&busy);
  s.add(&sampler);  // after busy: samples see post-tick state
  s.run_until_idle(100);
  ASSERT_EQ(sampler.num_samples(), 3u);
  EXPECT_EQ(sampler.sample_cycles(), (std::vector<Cycle>{0, 4, 8}));
  ASSERT_EQ(sampler.series().size(), 1u);
  EXPECT_EQ(sampler.series()[0].values, (std::vector<double>{1, 5, 9}));
}

TEST(Sampler, FastForwardSamplesMatchLockstep) {
  // The sampler pins fast-forward jumps to sample boundaries, where every
  // skipped component's ticks were no-ops — so the sampled series must be
  // bit-identical between the two scheduler modes.
  auto run = [](bool fast_forward, Cycle& skipped) {
    Simulator s;
    s.set_fast_forward(fast_forward);
    FiresAt a(100), b(40);
    Sampler sampler(8);
    sampler.watch("pending", [&a, &b] {
      return (a.idle() ? 0.0 : 1.0) + (b.idle() ? 0.0 : 1.0);
    });
    s.add(&a);
    s.add(&b);
    s.add(&sampler);
    s.run_until_idle(1000);
    skipped = s.cycles_skipped();
    return std::make_pair(sampler.sample_cycles(), sampler.series()[0].values);
  };
  Cycle ff_skipped = 0, ls_skipped = 0;
  const auto ff = run(true, ff_skipped);
  const auto ls = run(false, ls_skipped);
  EXPECT_EQ(ff.first, ls.first);
  EXPECT_EQ(ff.second, ls.second);
  // The interesting path was exercised: jumps happened, pinned to
  // boundaries rather than disabled.
  EXPECT_GT(ff_skipped, 0u);
  EXPECT_EQ(ls_skipped, 0u);
}

TEST(Sampler, NeverProlongsTheRun) {
  Simulator s;
  BusyFor busy(5);
  Sampler sampler(1000);  // next boundary far beyond the drain point
  s.add(&busy);
  s.add(&sampler);
  EXPECT_EQ(s.run_until_idle(100), 5u);
}

TEST(Sampler, WatchRegistrySkipsHistogramsAndDetaches) {
  MetricsRegistry reg;
  std::uint64_t count = 3;
  Histogram hist(1.0, 4);
  reg.add_counter("noc.packets", &count);
  reg.add_gauge("pe.depth", [] { return 2.5; });
  reg.add_histogram("noc.latency", &hist);

  Sampler sampler(2);
  sampler.watch_registry(reg);
  ASSERT_EQ(sampler.series().size(), 2u);  // histogram skipped
  sampler.tick(0);
  sampler.detach();  // probes dropped, data kept
  EXPECT_EQ(sampler.num_samples(), 1u);
  sampler.tick(2);  // detached probes sample as zero rather than dangle
  EXPECT_EQ(sampler.num_samples(), 2u);
  EXPECT_EQ(sampler.series()[0].values.size(), 2u);
  EXPECT_THROW(Sampler(0), Error);
}

// ----------------------------------------------------------------- perfetto

TEST(Perfetto, ExportsSpansInstantsAndDerivedCounters) {
  Tracer t;
  t.enable();
  t.record(10, TraceEvent::kPhaseSpan, 1, 5);  // aggregation, cycles 10..14
  t.record(0, TraceEvent::kDramSpan, 4096, 7);
  t.record(2, TraceEvent::kPacketInjected, 0, 64);
  t.record(6, TraceEvent::kPacketDelivered, 3, 64);
  t.record(1, TraceEvent::kDramRequest, 0, 4096);
  t.record(0, TraceEvent::kReconfigure, 0, 12);
  const std::string json = perfetto_trace_json(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // duration spans
  EXPECT_NE(json.find("\"aggregation\""), std::string::npos);
  EXPECT_NE(json.find("\"dram-stream\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // instants
  // Both derived counter tracks are present even without a sampler.
  EXPECT_NE(json.find("\"noc.packets_in_flight\""), std::string::npos);
  EXPECT_NE(json.find("\"dram.bytes_requested\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  // Structurally sound JSON: balanced braces and brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Perfetto, SampledSeriesBecomeCounterTracks) {
  Tracer t;
  t.enable();
  Sampler sampler(2);
  double level = 1.0;
  sampler.watch("pe.queue_depth_total", [&level] { return level; });
  sampler.tick(0);
  level = 4.0;
  sampler.tick(2);
  const std::string json = perfetto_trace_json(t, &sampler);
  EXPECT_NE(json.find("\"pe.queue_depth_total\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 4}"), std::string::npos);
}

TEST(Perfetto, WritesLoadableFile) {
  Tracer t;
  t.enable();
  t.record(0, TraceEvent::kPhaseSpan, 0, 3);
  const std::string path = ::testing::TempDir() + "/aurora_trace.json";
  write_perfetto_trace(path, t);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), perfetto_trace_json(t) + "\n");
}

// ------------------------------------------------- parallel coordinator

TEST(ParallelSimulator, RunsEveryPartitionToCompletion) {
  ParallelSimulator psim(/*lookahead=*/4);
  BusyFor fast(2);
  BusyFor slow(9);
  psim.add_partition().add(&fast);
  psim.add_partition().add(&slow);
  const Cycle end = psim.run_until_idle(100, /*jobs=*/2);
  EXPECT_GE(end, 9u);                 // windows may overshoot the drain
  EXPECT_LT(end, 9u + 4u);            // ... by less than one lookahead
  EXPECT_TRUE(fast.idle());
  EXPECT_TRUE(slow.idle());
  EXPECT_GE(psim.windows_run(), 1u);
}

TEST(ParallelSimulator, ExchangeRunsAtEveryBarrier) {
  ParallelSimulator psim(/*lookahead=*/3);
  BusyFor busy(7);
  psim.add_partition().add(&busy);
  std::size_t exchanges = 0;
  psim.set_exchange([&] { ++exchanges; });
  psim.run_until_idle(100, 1);
  // One exchange per window plus the final barrier that observes idleness.
  EXPECT_EQ(exchanges, psim.windows_run() + 1);
}

TEST(ParallelSimulator, FastForwardJumpsAcrossIdleWindows) {
  ParallelSimulator psim(/*lookahead=*/5);
  psim.set_fast_forward(true);
  FiresAt late(1000);
  psim.add_partition().add(&late);
  const Cycle end = psim.run_until_idle(5000, 1);
  EXPECT_GE(end, 1000u);
  // The jump to the event swallows nearly the whole run.
  EXPECT_GE(late.skipped_, 990u);
  EXPECT_LT(late.ticks_, 20u);
}

TEST(ParallelSimulator, DeadlockGuardThrows) {
  class Stuck final : public Component {
   public:
    Stuck() : Component("stuck") {}
    void tick(Cycle) override {}
    [[nodiscard]] bool idle() const override { return false; }
  };
  ParallelSimulator psim(/*lookahead=*/2);
  Stuck c;
  psim.add_partition().add(&c);
  EXPECT_THROW(psim.run_until_idle(50, 1), Error);
}

TEST(ParallelSimulator, RejectsZeroLookahead) {
  EXPECT_THROW(ParallelSimulator psim(0), Error);
}

}  // namespace
}  // namespace aurora::sim
