// Unit tests for the cycle-driven simulation kernel.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include <sstream>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace aurora::sim {
namespace {

/// Component that stays busy for a fixed number of ticks.
class BusyFor final : public Component {
 public:
  explicit BusyFor(Cycle busy) : Component("busy"), remaining_(busy) {}
  void tick(Cycle now) override {
    last_tick_ = now;
    ++ticks_;
    if (remaining_ > 0) --remaining_;
  }
  [[nodiscard]] bool idle() const override { return remaining_ == 0; }

  Cycle last_tick_ = 0;
  Cycle ticks_ = 0;

 private:
  Cycle remaining_;
};

TEST(Simulator, StartsAtCycleZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.all_idle());
}

TEST(Simulator, StepAdvancesClockAndTicksComponents) {
  Simulator s;
  BusyFor c(3);
  s.add(&c);
  s.step();
  EXPECT_EQ(s.now(), 1u);
  EXPECT_EQ(c.ticks_, 1u);
  EXPECT_EQ(c.last_tick_, 0u);
}

TEST(Simulator, RunUntilIdleStopsExactlyWhenDrained) {
  Simulator s;
  BusyFor c(5);
  s.add(&c);
  const Cycle end = s.run_until_idle(100);
  EXPECT_EQ(end, 5u);
  EXPECT_TRUE(s.all_idle());
}

TEST(Simulator, RunUntilIdleWaitsForSlowestComponent) {
  Simulator s;
  BusyFor fast(2), slow(9);
  s.add(&fast);
  s.add(&slow);
  EXPECT_EQ(s.run_until_idle(100), 9u);
}

TEST(Simulator, DeadlockGuardThrows) {
  /// Component that is never idle.
  class Stuck final : public Component {
   public:
    Stuck() : Component("stuck") {}
    void tick(Cycle) override {}
    [[nodiscard]] bool idle() const override { return false; }
  };
  Simulator s;
  Stuck c;
  s.add(&c);
  EXPECT_THROW(s.run_until_idle(50), Error);
}

TEST(Simulator, RunCyclesIgnoresIdleness) {
  Simulator s;
  BusyFor c(1);
  s.add(&c);
  s.run_cycles(10);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_EQ(c.ticks_, 10u);
}

TEST(Simulator, RejectsNullComponent) {
  Simulator s;
  EXPECT_THROW(s.add(nullptr), Error);
}


// ------------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultAndDropsEvents) {
  Tracer t;
  t.record(5, TraceEvent::kDramRequest, 1, 2);
  EXPECT_EQ(t.size(), 0u);
  t.enable();
  t.record(5, TraceEvent::kDramRequest, 1, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.count(TraceEvent::kDramRequest), 1u);
  EXPECT_EQ(t.count(TraceEvent::kTileStart), 0u);
}

TEST(Tracer, TimelineRendersOneRowPerActiveKind) {
  Tracer t;
  t.enable();
  for (Cycle c = 0; c < 100; c += 10) {
    t.record(c, TraceEvent::kPacketInjected, 0, 0);
  }
  t.record(50, TraceEvent::kReconfigure, 0, 0);
  const std::string timeline = t.render_timeline(20);
  EXPECT_NE(timeline.find("packet-injected"), std::string::npos);
  EXPECT_NE(timeline.find("reconfigure"), std::string::npos);
  EXPECT_EQ(timeline.find("dram-request"), std::string::npos);
  EXPECT_NE(timeline.find("10 events"), std::string::npos);
}

TEST(Tracer, EmptyTimeline) {
  Tracer t;
  EXPECT_EQ(t.render_timeline(), "(empty trace)\n");
}

TEST(Tracer, CsvOutput) {
  Tracer t;
  t.enable();
  t.record(3, TraceEvent::kTileStart, 7, 8);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "cycle,event,arg0,arg1\n3,tile-start,7,8\n");
}

TEST(Tracer, ClearResets) {
  Tracer t;
  t.enable();
  t.record(1, TraceEvent::kTaskComplete);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace aurora::sim
