// Unit tests for the cycle-driven simulation kernel.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include <sstream>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace aurora::sim {
namespace {

/// Component that stays busy for a fixed number of ticks.
class BusyFor final : public Component {
 public:
  explicit BusyFor(Cycle busy) : Component("busy"), remaining_(busy) {}
  void tick(Cycle now) override {
    last_tick_ = now;
    ++ticks_;
    if (remaining_ > 0) --remaining_;
  }
  [[nodiscard]] bool idle() const override { return remaining_ == 0; }

  Cycle last_tick_ = 0;
  Cycle ticks_ = 0;

 private:
  Cycle remaining_;
};

TEST(Simulator, StartsAtCycleZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.all_idle());
}

TEST(Simulator, StepAdvancesClockAndTicksComponents) {
  Simulator s;
  BusyFor c(3);
  s.add(&c);
  s.step();
  EXPECT_EQ(s.now(), 1u);
  EXPECT_EQ(c.ticks_, 1u);
  EXPECT_EQ(c.last_tick_, 0u);
}

TEST(Simulator, RunUntilIdleStopsExactlyWhenDrained) {
  Simulator s;
  BusyFor c(5);
  s.add(&c);
  const Cycle end = s.run_until_idle(100);
  EXPECT_EQ(end, 5u);
  EXPECT_TRUE(s.all_idle());
}

TEST(Simulator, RunUntilIdleWaitsForSlowestComponent) {
  Simulator s;
  BusyFor fast(2), slow(9);
  s.add(&fast);
  s.add(&slow);
  EXPECT_EQ(s.run_until_idle(100), 9u);
}

TEST(Simulator, DeadlockGuardThrows) {
  /// Component that is never idle.
  class Stuck final : public Component {
   public:
    Stuck() : Component("stuck") {}
    void tick(Cycle) override {}
    [[nodiscard]] bool idle() const override { return false; }
  };
  Simulator s;
  Stuck c;
  s.add(&c);
  EXPECT_THROW(s.run_until_idle(50), Error);
}

TEST(Simulator, RunCyclesIgnoresIdleness) {
  Simulator s;
  BusyFor c(1);
  s.add(&c);
  s.run_cycles(10);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_EQ(c.ticks_, 10u);
}

TEST(Simulator, RejectsNullComponent) {
  Simulator s;
  EXPECT_THROW(s.add(nullptr), Error);
}

// ------------------------------------------------- event-driven fast-forward

/// Component with one scheduled event: ticks are no-ops until `fire_at`,
/// where it does one unit of work. Counts every tick and skipped cycle so
/// tests can see exactly what the scheduler did.
class FiresAt final : public Component {
 public:
  explicit FiresAt(Cycle fire_at) : Component("fires-at"), fire_at_(fire_at) {}
  void tick(Cycle now) override {
    ++ticks_;
    if (pending_ && now >= fire_at_) pending_ = false;
  }
  [[nodiscard]] bool idle() const override { return !pending_; }
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override {
    if (!pending_) return kNoEvent;
    return std::max(now, fire_at_);
  }
  void skip_cycles(Cycle from, Cycle to) override { skipped_ += to - from; }
  void rearm(Cycle fire_at) {
    fire_at_ = fire_at;
    pending_ = true;
    wake();
  }

  Cycle ticks_ = 0;
  Cycle skipped_ = 0;

 private:
  Cycle fire_at_;
  bool pending_ = true;
};

TEST(FastForward, JumpsOverDeadCyclesWithoutTickingThem) {
  Simulator s;
  FiresAt c(1000);
  s.add(&c);
  EXPECT_EQ(s.run_until_idle(10'000), 1001u);
  // Tick at 0, jump to 1000, tick there: two ticks for 1001 cycles.
  EXPECT_EQ(c.ticks_, 2u);
  EXPECT_EQ(c.skipped_, 999u);
  EXPECT_EQ(s.cycles_skipped(), 999u);
}

TEST(FastForward, DisabledModeTicksEveryCycle) {
  Simulator s;
  s.set_fast_forward(false);
  FiresAt c(1000);
  s.add(&c);
  EXPECT_EQ(s.run_until_idle(10'000), 1001u);
  EXPECT_EQ(c.ticks_, 1001u);
  EXPECT_EQ(s.cycles_skipped(), 0u);
}

TEST(FastForward, EndCycleMatchesLockstepExactly) {
  for (Cycle fire : {0u, 1u, 2u, 7u, 63u, 5000u}) {
    Simulator ff, ls;
    ls.set_fast_forward(false);
    FiresAt a(fire), b(fire);
    ff.add(&a);
    ls.add(&b);
    EXPECT_EQ(ff.run_until_idle(100'000), ls.run_until_idle(100'000))
        << "fire_at=" << fire;
  }
}

TEST(FastForward, LegacyComponentPinsTheClock) {
  // A lockstep-default component ("tick me every cycle") must prevent jumps
  // even when an event-aware peer sees its next event far away.
  Simulator s;
  FiresAt aware(500);
  BusyFor legacy(200);
  s.add(&aware);
  s.add(&legacy);
  s.run_until_idle(10'000);
  // No jumps while the legacy component was busy; after it drains it reports
  // kNoEvent via... it doesn't — BusyFor keeps the default next_event_cycle,
  // so it pins the clock right up to cycle 500. Everything stays lockstep.
  EXPECT_EQ(aware.ticks_, 501u);
  EXPECT_EQ(s.cycles_skipped(), 0u);
}

TEST(FastForward, QuiescentComponentRetiresAndWakes) {
  Simulator s;
  FiresAt a(3), b(10);
  s.add(&a);
  s.add(&b);
  s.run_until_idle(1000);
  const Cycle a_ticks_after_drain = a.ticks_;
  // a drained at cycle 3 and reported kNoEvent: it must not be ticked while
  // b finishes out (cycles 4..10 are jumped or ticked only on b).
  EXPECT_LE(a_ticks_after_drain, 3u);

  // wake() re-enters the tick loop: rearm and run again on the same sim.
  a.rearm(s.now() + 50);
  EXPECT_FALSE(s.all_idle());
  s.run_until_idle(1000);
  EXPECT_TRUE(s.all_idle());
  EXPECT_GT(a.ticks_, a_ticks_after_drain);
}

TEST(FastForward, DeadlineStillTripsUnderFastForward) {
  /// Never idle, but always claims its next event is far away — a livelocked
  /// component must still hit the deadline guard, clamped like lockstep.
  class Stalled final : public Component {
   public:
    Stalled() : Component("stalled") {}
    void tick(Cycle) override {}
    [[nodiscard]] bool idle() const override { return false; }
    [[nodiscard]] Cycle next_event_cycle(Cycle now) const override {
      return now + 1'000'000;
    }
  };
  Simulator s;
  Stalled c;
  s.add(&c);
  EXPECT_THROW(s.run_until_idle(500), Error);
  EXPECT_LE(s.now(), 500u);
}

TEST(FastForward, SkipCyclesSpansExactlyTheJumpedRange) {
  Simulator s;
  FiresAt a(100), b(40);
  s.add(&a);
  s.add(&b);
  s.run_until_idle(1000);
  // Jumps: 1 -> 40 (b's event), then 41 -> 100 (a's event, b now quiescent).
  EXPECT_EQ(s.now(), 101u);
  EXPECT_EQ(a.skipped_, 98u);
  EXPECT_EQ(s.cycles_skipped(), 98u);
}


// ------------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultAndDropsEvents) {
  Tracer t;
  t.record(5, TraceEvent::kDramRequest, 1, 2);
  EXPECT_EQ(t.size(), 0u);
  t.enable();
  t.record(5, TraceEvent::kDramRequest, 1, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.count(TraceEvent::kDramRequest), 1u);
  EXPECT_EQ(t.count(TraceEvent::kTileStart), 0u);
}

TEST(Tracer, TimelineRendersOneRowPerActiveKind) {
  Tracer t;
  t.enable();
  for (Cycle c = 0; c < 100; c += 10) {
    t.record(c, TraceEvent::kPacketInjected, 0, 0);
  }
  t.record(50, TraceEvent::kReconfigure, 0, 0);
  const std::string timeline = t.render_timeline(20);
  EXPECT_NE(timeline.find("packet-injected"), std::string::npos);
  EXPECT_NE(timeline.find("reconfigure"), std::string::npos);
  EXPECT_EQ(timeline.find("dram-request"), std::string::npos);
  EXPECT_NE(timeline.find("10 events"), std::string::npos);
}

TEST(Tracer, EmptyTimeline) {
  Tracer t;
  EXPECT_EQ(t.render_timeline(), "(empty trace)\n");
}

TEST(Tracer, CsvOutput) {
  Tracer t;
  t.enable();
  t.record(3, TraceEvent::kTileStart, 7, 8);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "cycle,event,arg0,arg1\n3,tile-start,7,8\n");
}

TEST(Tracer, ClearResets) {
  Tracer t;
  t.enable();
  t.record(1, TraceEvent::kTaskComplete);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace aurora::sim
