// Tests for graph file I/O and the JSON metrics report.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/report.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace aurora {
namespace {

using graph::CsrGraph;

TEST(EdgeListIo, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "0 1\n"
      "  # indented comment\n"
      "1 2\n"
      "0 2\n");
  const CsrGraph g = graph::read_edge_list(in, /*symmetrize=*/true);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(EdgeListIo, DirectedMode) {
  std::istringstream in("0 1\n1 2\n");
  const CsrGraph g = graph::read_edge_list(in, /*symmetrize=*/false);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(EdgeListIo, ForcedVertexCount) {
  std::istringstream in("0 1\n");
  const CsrGraph g = graph::read_edge_list(in, true, /*num_vertices=*/10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
}

TEST(EdgeListIo, RejectsGarbage) {
  std::istringstream bad("0 x\n");
  EXPECT_THROW((void)graph::read_edge_list(bad), Error);
  std::istringstream empty("# nothing\n");
  EXPECT_THROW((void)graph::read_edge_list(empty), Error);
}

TEST(EdgeListIo, RejectsDuplicateEdges) {
  std::istringstream dup("0 1\n1 2\n0 1\n");
  try {
    (void)graph::read_edge_list(dup, /*symmetrize=*/false);
    FAIL() << "duplicate edge accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate edge (0, 1)"),
              std::string::npos)
        << e.what();
  }
  // The two directions of one undirected edge are distinct ordered pairs —
  // symmetric inputs (write_edge_list output) stay loadable.
  std::istringstream sym("0 1\n1 0\n");
  const CsrGraph g = graph::read_edge_list(sym, /*symmetrize=*/false);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListIo, RejectsOutOfRangeEndpoints) {
  std::istringstream over("0 1\n3 9\n");
  try {
    (void)graph::read_edge_list(over, true, /*num_vertices=*/5);
    FAIL() << "out-of-range endpoint accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("edge (3, 9)"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("vertex count 5"), std::string::npos) << what;
  }
  // Without a declared count the graph grows to fit instead.
  std::istringstream grow("0 1\n3 9\n");
  EXPECT_EQ(graph::read_edge_list(grow, true).num_vertices(), 10u);
}

TEST(EdgeListIo, RoundTripsThroughText) {
  Rng rng(3);
  const CsrGraph g = graph::generate_erdos_renyi(50, 120, rng);
  std::stringstream buf;
  graph::write_edge_list(buf, g);
  const CsrGraph back = graph::read_edge_list(buf, /*symmetrize=*/false);
  EXPECT_EQ(back.row_ptr(), g.row_ptr());
  EXPECT_EQ(back.col_idx(), g.col_idx());
}

TEST(CsrBinaryIo, RoundTripsExactly) {
  Rng rng(5);
  const CsrGraph g = graph::generate_power_law(
      {.n = 200, .undirected_edges = 600, .alpha = 2.2}, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  graph::write_csr_binary(buf, g);
  const CsrGraph back = graph::read_csr_binary(buf);
  EXPECT_EQ(back.row_ptr(), g.row_ptr());
  EXPECT_EQ(back.col_idx(), g.col_idx());
}

TEST(CsrBinaryIo, RejectsBadMagicAndTruncation) {
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << "NOPE-this-is-not-a-graph";
  EXPECT_THROW((void)graph::read_csr_binary(bad), Error);

  Rng rng(6);
  const CsrGraph g = graph::generate_ring(8);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  graph::write_csr_binary(buf, g);
  const std::string full = buf.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << full.substr(0, full.size() / 2);
  EXPECT_THROW((void)graph::read_csr_binary(cut), Error);
}

TEST(CsrBinaryIo, FileRoundTrip) {
  Rng rng(7);
  const CsrGraph g = graph::generate_erdos_renyi(30, 80, rng);
  const std::string path = ::testing::TempDir() + "/aurora_io_test.acsr";
  graph::save_csr_binary(path, g);
  const CsrGraph back = graph::load_csr_binary(path);
  EXPECT_EQ(back.col_idx(), g.col_idx());
}

// ------------------------------------------------------------- JSON report

TEST(Report, MetricsJsonHasStableKeys) {
  core::RunMetrics m;
  m.total_cycles = 123;
  m.dram_bytes = 456;
  m.avg_hops = 2.5;
  m.energy.dram_pj = 7.0;
  const std::string json = core::metrics_to_json(m);
  EXPECT_NE(json.find("\"total_cycles\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"dram_bytes\": 456"), std::string::npos);
  EXPECT_NE(json.find("\"avg_hops\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"energy_pj\""), std::string::npos);
  EXPECT_NE(json.find("\"dram\": 7"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, MetricsJsonHasLatencyPercentilesAndPhases) {
  core::RunMetrics m;
  m.noc_packet_latency.add(10.0);
  m.noc_packet_latency.add(10.0);
  m.dram_request_latency.add(100.0);
  m.phase(gnn::Phase::kAggregation).active_cycles = 42;
  m.phase(gnn::Phase::kAggregation).noc_messages = 9;
  m.phase(gnn::Phase::kVertexUpdate).dram_bytes = 77;
  const std::string json = core::metrics_to_json(m);

  // Latency percentile objects with a stable key order.
  const auto noc_pos = json.find("\"noc_packet_latency\": {\"p50\":");
  ASSERT_NE(noc_pos, std::string::npos);
  const auto dram_pos = json.find("\"dram_request_latency\": {\"p50\":");
  ASSERT_NE(dram_pos, std::string::npos);
  EXPECT_LT(noc_pos, dram_pos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);

  // Per-phase block: all three phases, fixed order, populated values.
  const auto eu = json.find("\"edge_update\"");
  const auto agg = json.find("\"aggregation\"");
  const auto vu = json.find("\"vertex_update\"");
  ASSERT_NE(eu, std::string::npos);
  ASSERT_NE(agg, std::string::npos);
  ASSERT_NE(vu, std::string::npos);
  EXPECT_LT(eu, agg);
  EXPECT_LT(agg, vu);
  EXPECT_NE(json.find("\"active_cycles\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"noc_messages\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"dram_bytes\": 77"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, RunsJsonEscapesNames) {
  core::NamedRun run;
  run.accelerator = "Aurora \"v2\"";
  run.workload = "cora";
  const std::string json = core::runs_to_json({run});
  EXPECT_NE(json.find("Aurora \\\"v2\\\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(Report, WritesFile) {
  const std::string path = ::testing::TempDir() + "/aurora_report.json";
  core::write_json_file(path, "{\"ok\": 1}");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"ok\": 1"), std::string::npos);
}

}  // namespace
}  // namespace aurora
