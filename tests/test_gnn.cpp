// Unit and property tests for the GNN model zoo, workflow generator and the
// dense reference executor.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gnn/models.hpp"
#include "gnn/ops.hpp"
#include "gnn/reference.hpp"
#include "gnn/tensor.hpp"
#include "gnn/workflow.hpp"
#include "graph/generators.hpp"

namespace aurora::gnn {
namespace {

using graph::CsrBuilder;
using graph::CsrGraph;
using graph::generate_erdos_renyi;
using graph::generate_star;

// ---------------------------------------------------------------- Table II

TEST(ModelOps, TableIIGcnRow) {
  const ModelOps& ops = model_ops(GnnModel::kGcn);
  EXPECT_EQ(format_ops(ops.edge_update), "Scalar x V");
  EXPECT_EQ(format_ops(ops.aggregation), "Sum V");
  EXPECT_EQ(format_ops(ops.vertex_update), "MxV, alpha");
}

TEST(ModelOps, TableIINullPhases) {
  EXPECT_FALSE(model_ops(GnnModel::kGin).edge_update.present());
  EXPECT_FALSE(model_ops(GnnModel::kGraphSageMean).edge_update.present());
  EXPECT_FALSE(model_ops(GnnModel::kCommNet).edge_update.present());
  EXPECT_FALSE(model_ops(GnnModel::kEdgeConv1).vertex_update.present());
  EXPECT_FALSE(model_ops(GnnModel::kEdgeConv5).vertex_update.present());
}

TEST(ModelOps, TableIIAttentionRows) {
  for (GnnModel m : {GnnModel::kVanillaAttention, GnnModel::kAgnn}) {
    const ModelOps& ops = model_ops(m);
    EXPECT_TRUE(ops.edge_update.uses(OpKind::kScalarVec));
    EXPECT_TRUE(ops.edge_update.uses(OpKind::kDotProduct));
    EXPECT_TRUE(ops.vertex_update.uses(OpKind::kMatVec));
    EXPECT_TRUE(ops.vertex_update.uses(OpKind::kActivation));
  }
}

TEST(ModelOps, TableIIGGcnRow) {
  const ModelOps& ops = model_ops(GnnModel::kGGcn);
  EXPECT_TRUE(ops.edge_update.uses(OpKind::kMatVec));
  EXPECT_TRUE(ops.edge_update.uses(OpKind::kElementwiseMul));
  EXPECT_TRUE(ops.edge_update.uses(OpKind::kActivation));
}

TEST(ModelOps, TableIIPoolConcat) {
  const ModelOps& ops = model_ops(GnnModel::kGraphSagePool);
  EXPECT_TRUE(ops.vertex_update.uses(OpKind::kConcat));
}

TEST(ModelCategory, MatchesPaperTaxonomy) {
  EXPECT_EQ(model_category(GnnModel::kGcn), GnnCategory::kConvolutional);
  EXPECT_EQ(model_category(GnnModel::kGin), GnnCategory::kConvolutional);
  EXPECT_EQ(model_category(GnnModel::kVanillaAttention),
            GnnCategory::kAttentional);
  EXPECT_EQ(model_category(GnnModel::kGGcn), GnnCategory::kMessagePassing);
  EXPECT_EQ(model_category(GnnModel::kEdgeConv5),
            GnnCategory::kMessagePassing);
}

TEST(ModelNames, AllDistinct) {
  std::set<std::string> names;
  for (GnnModel m : kAllModels) names.insert(model_name(m));
  EXPECT_EQ(names.size(), kAllModels.size());
}

// ------------------------------------------------------- workflow generator

TEST(Workflow, GcnOpCountFormulas) {
  // H >= F keeps the aggregation-first order, so the raw formulas apply.
  const LayerConfig layer{.in_dim = 16, .out_dim = 16};
  const Workflow wf = generate_workflow(GnnModel::kGcn, layer, 100, 400);
  EXPECT_FALSE(wf.update_first);
  EXPECT_EQ(wf.phase(Phase::kEdgeUpdate).total_ops, 400u * 16);
  EXPECT_EQ(wf.phase(Phase::kAggregation).total_ops, 400u * 16);
  EXPECT_EQ(wf.phase(Phase::kVertexUpdate).total_ops,
            2u * 100 * 16 * 16 + 2u * 100 * 16);
  EXPECT_EQ(wf.phase(Phase::kVertexUpdate).weight_bytes, (16u * 16 + 16) * 8);
}

TEST(Workflow, UpdateFirstReorderingForShrinkingConvLayers) {
  // Flexible dataflow: C-GNN layers that shrink the feature width apply the
  // transform first, so per-edge work and messages become H-wide.
  const LayerConfig layer{.in_dim = 16, .out_dim = 8};
  const Workflow wf = generate_workflow(GnnModel::kGcn, layer, 100, 400);
  EXPECT_TRUE(wf.update_first);
  EXPECT_EQ(wf.edge_feature_dim, 8u);
  EXPECT_EQ(wf.phase(Phase::kEdgeUpdate).total_ops, 400u * 8);
  EXPECT_EQ(wf.phase(Phase::kAggregation).total_ops, 400u * 8);
  EXPECT_EQ(wf.phase(Phase::kAggregation).message_bytes, 8u * 8);
  // Vertex-update work itself is order-invariant.
  EXPECT_EQ(wf.phase(Phase::kVertexUpdate).total_ops,
            2u * 100 * 16 * 8 + 2u * 100 * 8);
}

TEST(Workflow, NoReorderingForAttentionOrMpModels) {
  const LayerConfig layer{.in_dim = 16, .out_dim = 8};
  EXPECT_FALSE(generate_workflow(GnnModel::kVanillaAttention, layer, 100, 400)
                   .update_first);
  EXPECT_FALSE(generate_workflow(GnnModel::kGGcn, layer, 100, 400)
                   .update_first);
  EXPECT_FALSE(generate_workflow(GnnModel::kEdgeConv1, layer, 100, 400)
                   .update_first);
}

TEST(Workflow, EdgeConvHasNoVertexUpdate) {
  const LayerConfig layer{.in_dim = 8, .out_dim = 4};
  const Workflow wf = generate_workflow(GnnModel::kEdgeConv1, layer, 50, 200);
  EXPECT_FALSE(wf.needs_vertex_update());
  EXPECT_TRUE(wf.needs_edge_update());
  EXPECT_EQ(wf.phase(Phase::kEdgeUpdate).total_ops, 200u * (8 + 2 * 8 * 4));
  // Edge features flowing to aggregation are H wide for EdgeConv.
  EXPECT_EQ(wf.edge_feature_dim, 4u);
}

TEST(Workflow, GinHasNoEdgeUpdate) {
  const LayerConfig layer{.in_dim = 8, .out_dim = 4};
  const Workflow wf = generate_workflow(GnnModel::kGin, layer, 50, 200);
  EXPECT_FALSE(wf.needs_edge_update());
  EXPECT_EQ(wf.phase(Phase::kEdgeUpdate).total_ops, 0u);
  EXPECT_GT(wf.phase(Phase::kVertexUpdate).total_ops, 0u);
}

TEST(Workflow, MessageVolumes) {
  const LayerConfig layer{.in_dim = 4, .out_dim = 2};
  const Workflow wf =
      generate_workflow(GnnModel::kVanillaAttention, layer, 10, 30);
  EXPECT_EQ(wf.phase(Phase::kAggregation).num_messages, 30u);
  EXPECT_EQ(wf.phase(Phase::kAggregation).message_bytes, 4u * 8);
  EXPECT_EQ(wf.phase(Phase::kVertexUpdate).num_messages, 10u);
}

class WorkflowAllModels : public ::testing::TestWithParam<GnnModel> {};

TEST_P(WorkflowAllModels, ConsistentWithTableII) {
  const LayerConfig layer{.in_dim = 32, .out_dim = 16};
  const Workflow wf = generate_workflow(GetParam(), layer, 200, 1000);
  const ModelOps& ops = model_ops(GetParam());
  for (Phase p : kAllPhases) {
    const bool should_exist = ops.for_phase(p).present();
    EXPECT_EQ(wf.phase(p).present, should_exist) << phase_name(p);
    if (should_exist && p != Phase::kAggregation) {
      EXPECT_GT(wf.phase(p).total_ops, 0u) << phase_name(p);
    }
  }
  // Aggregation always present and scales with edges.
  EXPECT_TRUE(wf.phase(Phase::kAggregation).present);
  EXPECT_GE(wf.phase(Phase::kAggregation).total_ops, 1000u);
  EXPECT_GT(wf.total_ops(), 0u);
}

TEST_P(WorkflowAllModels, OpsScaleMonotonicallyWithGraph) {
  const LayerConfig layer{.in_dim = 16, .out_dim = 16};
  const Workflow small = generate_workflow(GetParam(), layer, 100, 500);
  const Workflow big = generate_workflow(GetParam(), layer, 200, 1000);
  EXPECT_GT(big.total_ops(), small.total_ops());
}

INSTANTIATE_TEST_SUITE_P(AllModels, WorkflowAllModels,
                         ::testing::ValuesIn(kAllModels),
                         [](const auto& param_info) {
                           std::string n = model_name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ----------------------------------------------------------- tensor kernels

TEST(Tensor, MatVec) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const Vector x = {1, 1, 1};
  const Vector y = mat_vec(m, x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Tensor, DotAndElementwise) {
  const Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vector m = elementwise_mul(a, b);
  EXPECT_DOUBLE_EQ(m[2], 18.0);
}

TEST(Tensor, ActivationFunctions) {
  const Vector x = {-1.0, 0.0, 2.0};
  const Vector r = relu(x);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
  const Vector s = sigmoid(x);
  EXPECT_NEAR(s[1], 0.5, 1e-12);
  const Vector sm = softmax(x);
  double total = 0.0;
  for (double v : sm) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(sm[2], sm[0]);
}

TEST(Tensor, ConcatAndMax) {
  const Vector a = {1, 2}, b = {3};
  const Vector c = concat(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  Vector acc = {0, 5};
  elementwise_max(acc, Vector{3, 1});
  EXPECT_DOUBLE_EQ(acc[0], 3.0);
  EXPECT_DOUBLE_EQ(acc[1], 5.0);
}

// ------------------------------------------------------------ PolyBench kernels

TEST(Kernels, GramschmidtProducesOrthonormalColumns) {
  Rng rng(41);
  Matrix a(8, 4);
  a.randomize(rng);
  Matrix r;
  const Matrix q = kernel_gramschmidt(a, &r);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double d = 0.0;
      for (std::size_t k = 0; k < 8; ++k) d += q.at(k, i) * q.at(k, j);
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-9) << i << "," << j;
    }
  }
  // Q * R reconstructs A.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double v = 0.0;
      for (std::size_t k = 0; k < 4; ++k) v += q.at(i, k) * r.at(k, j);
      EXPECT_NEAR(v, a.at(i, j), 1e-9);
    }
  }
}

TEST(Kernels, MvtMatchesDefinition) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Vector x1 = {1, 1}, x2 = {0, 0};
  const Vector y1 = {1, 0}, y2 = {0, 1};
  kernel_mvt(a, x1, x2, y1, y2);
  EXPECT_DOUBLE_EQ(x1[0], 2.0);  // 1 + A[0][0]*1
  EXPECT_DOUBLE_EQ(x1[1], 4.0);
  EXPECT_DOUBLE_EQ(x2[0], 3.0);  // A^T row: A[1][0]
  EXPECT_DOUBLE_EQ(x2[1], 4.0);
}

TEST(Kernels, GesummvMatchesDefinition) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  const Vector x = {1, 2};
  const Vector y = kernel_gesummv(2.0, 0.5, a, b, x);
  // alpha*A*x = 2*[3,3]=[6,6]; beta*B*x = 0.5*[6,6]=[3,3].
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(Kernels, GemverRunsAndUpdatesA) {
  Matrix a(3, 3, 0.0);
  const Vector u1 = {1, 0, 0}, v1 = {0, 1, 0}, u2 = {0, 0, 1}, v2 = {1, 0, 0};
  Vector w(3, 0.0), x(3, 0.0);
  const Vector y = {1, 1, 1}, z = {0.5, 0.5, 0.5};
  kernel_gemver(1.0, 1.0, a, u1, v1, u2, v2, w, x, y, z);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 1.0);
  // x = A'^T y + z: column sums + 0.5.
  EXPECT_DOUBLE_EQ(x[1], 1.5);
}

// --------------------------------------------------------- reference layers

CsrGraph triangle_graph() {
  CsrBuilder b(3);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(0, 2);
  return std::move(b).build();
}

class ReferenceAllModels : public ::testing::TestWithParam<GnnModel> {};

TEST_P(ReferenceAllModels, ShapesAndDeterminism) {
  Rng rng(77);
  const CsrGraph g = generate_erdos_renyi(20, 50, rng);
  Matrix x(g.num_vertices(), 6);
  x.randomize(rng);
  Rng prng(99);
  const auto params = make_reference_params(GetParam(), 6, 4, prng);
  const Matrix out1 = reference_layer(GetParam(), g, x, params);
  const Matrix out2 = reference_layer(GetParam(), g, x, params);
  EXPECT_EQ(out1.rows(), g.num_vertices());
  EXPECT_EQ(out1.cols(), reference_output_dim(GetParam(), 6, 4));
  EXPECT_EQ(out1.data(), out2.data());
  for (double v : out1.data()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ReferenceAllModels,
                         ::testing::ValuesIn(kAllModels),
                         [](const auto& param_info) {
                           std::string n = model_name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Reference, GcnOnTriangleHandChecked) {
  // Symmetric triangle with identity-ish weights: every vertex has degree 2,
  // so normalisation is 1/3 for self (D=3) and 1/3 for each neighbor.
  const CsrGraph g = triangle_graph();
  Matrix x(3, 1);
  x.at(0, 0) = 3.0;
  x.at(1, 0) = 6.0;
  x.at(2, 0) = 9.0;
  ReferenceParams p;
  p.w = Matrix(1, 1);
  p.w.at(0, 0) = 1.0;
  p.bias = Vector{0.0};
  const Matrix out = reference_layer(GnnModel::kGcn, g, x, p);
  // m_0 = 3/3 + 6/3 + 9/3 = 6; ReLU(6) = 6.
  EXPECT_NEAR(out.at(0, 0), 6.0, 1e-12);
  EXPECT_NEAR(out.at(1, 0), 6.0, 1e-12);
  EXPECT_NEAR(out.at(2, 0), 6.0, 1e-12);
}

TEST(Reference, GinEpsilonWeighting) {
  const CsrGraph g = generate_star(3);  // 0 -- 1, 0 -- 2
  Matrix x(3, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 10.0;
  x.at(2, 0) = 100.0;
  ReferenceParams p;
  p.epsilon = 0.5;
  p.w = Matrix(1, 1);
  p.w.at(0, 0) = 1.0;
  p.bias = Vector{0.0};
  p.w2 = Matrix(1, 1);
  p.w2.at(0, 0) = 1.0;
  p.bias2 = Vector{0.0};
  const Matrix out = reference_layer(GnnModel::kGin, g, x, p);
  // m_0 = 1.5*1 + 10 + 100 = 111.5 -> MLP(identity) = 111.5.
  EXPECT_NEAR(out.at(0, 0), 111.5, 1e-12);
  // m_1 = 1.5*10 + 1 = 16.
  EXPECT_NEAR(out.at(1, 0), 16.0, 1e-12);
}

TEST(Reference, SageMeanAveragesNeighbors) {
  const CsrGraph g = generate_star(3);
  Matrix x(3, 1);
  x.at(0, 0) = 0.0;
  x.at(1, 0) = 4.0;
  x.at(2, 0) = 8.0;
  ReferenceParams p;
  p.w = Matrix(1, 1);
  p.w.at(0, 0) = 2.0;
  const Matrix out = reference_layer(GnnModel::kGraphSageMean, g, x, p);
  EXPECT_NEAR(out.at(0, 0), 2.0 * 6.0, 1e-12);  // mean(4,8) = 6
  EXPECT_NEAR(out.at(1, 0), 0.0, 1e-12);        // mean(x_0) = 0
}

TEST(Reference, EdgeConvMaxAggregation) {
  const CsrGraph g = generate_star(3);
  Matrix x(3, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 5.0;
  x.at(2, 0) = 2.0;
  ReferenceParams p;
  p.mlp.emplace_back(1, 1);
  p.mlp[0].at(0, 0) = 1.0;
  const Matrix out = reference_layer(GnnModel::kEdgeConv1, g, x, p);
  // e_{u,0} = x_u - x_0: max(4, 1) = 4.
  EXPECT_NEAR(out.at(0, 0), 4.0, 1e-12);
  // vertex 1 sees only u=0: 1 - 5 = -4.
  EXPECT_NEAR(out.at(1, 0), -4.0, 1e-12);
}

TEST(Reference, AttentionWeightsByDotProduct) {
  const CsrGraph g = generate_star(3);
  Matrix x(3, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 2.0;
  x.at(2, 0) = 3.0;
  ReferenceParams p;
  p.w = Matrix(1, 1);
  p.w.at(0, 0) = 1.0;
  const Matrix out =
      reference_layer(GnnModel::kVanillaAttention, g, x, p);
  // m_0 = (1*2)*2 + (1*3)*3 = 13; softmax of a single logit = 1.
  EXPECT_NEAR(out.at(0, 0), 1.0, 1e-12);
}

TEST(Reference, IsolatedVertexProducesZeros) {
  CsrBuilder b(3);
  b.add_undirected_edge(0, 1);  // vertex 2 isolated
  const CsrGraph g = std::move(b).build();
  Matrix x(3, 2, 1.0);
  Rng prng(5);
  const auto params = make_reference_params(GnnModel::kCommNet, 2, 2, prng);
  const Matrix out = reference_layer(GnnModel::kCommNet, g, x, params);
  EXPECT_DOUBLE_EQ(out.at(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(2, 1), 0.0);
}

}  // namespace
}  // namespace aurora::gnn
