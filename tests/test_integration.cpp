// Cross-module integration and property sweeps: the full grid of models x
// datasets through both engines, baseline sweeps, generator properties, and
// cross-engine consistency invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/baseline.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/functional_engine.hpp"
#include "gnn/reference.hpp"
#include "core/roofline.hpp"
#include "graph/batch.hpp"
#include "graph/generators.hpp"

namespace aurora {
namespace {

core::AuroraConfig tiny_config() {
  core::AuroraConfig c = core::AuroraConfig::bench();
  c.array_dim = 8;
  c.noc.k = 8;
  return c;
}

std::string sanitize(std::string n) {
  for (char& c : n) {
    if (c == '-' || c == ' ') c = '_';
  }
  return n;
}

// ------------------------------ every model x every dataset, cycle engine

using ModelDataset = std::tuple<gnn::GnnModel, graph::DatasetId>;

class GridCycle : public ::testing::TestWithParam<ModelDataset> {};

TEST_P(GridCycle, RunsAndProducesConsistentMetrics) {
  const auto [model, dataset_id] = GetParam();
  const double scale =
      dataset_id == graph::DatasetId::kReddit ? 0.0008 : 0.02;
  const auto ds = graph::make_dataset(dataset_id, scale);
  core::AuroraAccelerator accel(tiny_config());
  const auto m = accel.run_layer(ds, model, {16, 8}, 1);

  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_GT(m.dram_bytes, 0u);
  EXPECT_GT(m.energy.total_pj(), 0.0);
  // Total time is never less than its pipelined components.
  EXPECT_GE(m.total_cycles, m.reconfig_cycles);
  // Partition covers the array exactly.
  EXPECT_EQ(m.partition_a + m.partition_b, 64u);
  // Energy breakdown sums to total.
  const auto& e = m.energy;
  EXPECT_NEAR(e.total_pj(), e.compute_pj + e.sram_pj + e.dram_pj + e.noc_pj +
                                e.reconfig_pj + e.leakage_pj,
              1e-6 * e.total_pj());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, GridCycle,
    ::testing::Combine(::testing::ValuesIn(gnn::kAllModels),
                       ::testing::ValuesIn(graph::kAllDatasets)),
    [](const auto& info) {
      return sanitize(std::string(gnn::model_name(std::get<0>(info.param))) +
                      "_" + graph::dataset_name(std::get<1>(info.param)));
    });

// ------------------------------------- baselines x models, quick property

using BaselineModel = std::tuple<baselines::BaselineId, gnn::GnnModel>;

class GridBaseline : public ::testing::TestWithParam<BaselineModel> {};

TEST_P(GridBaseline, EveryBaselineExecutesEveryModel) {
  const auto [baseline_id, model] = GetParam();
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.1);
  const auto wf = gnn::generate_workflow(model, {32, 16},
                                         ds.num_vertices(), ds.num_edges());
  const auto accel = baselines::make_baseline(
      baseline_id, baselines::chip_params_matching(16, 8, 100 * 1024));
  const auto m = accel->run_layer(ds, wf, {});
  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_GT(m.dram_bytes, 0u);
  EXPECT_GE(m.total_cycles, m.dram_cycles);
  EXPECT_GE(m.total_cycles, m.onchip_comm_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, GridBaseline,
    ::testing::Combine(::testing::ValuesIn(baselines::kAllBaselines),
                       ::testing::ValuesIn(gnn::kAllModels)),
    [](const auto& info) {
      return sanitize(
          std::string(baselines::baseline_name(std::get<0>(info.param))) +
          "_" + gnn::model_name(std::get<1>(info.param)));
    });

// ----------------------------------------------- cross-engine consistency

TEST(CrossEngine, AnalyticAndCycleAgreeOnDecisions) {
  // Same partition, same tiling, same DRAM accounting — by construction; a
  // regression here means the engines drifted apart.
  auto cfg = tiny_config();
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.1);
  core::AuroraAccelerator cycle(cfg);
  cfg.mode = core::SimMode::kAnalytic;
  core::AuroraAccelerator analytic(cfg);
  for (gnn::GnnModel model : gnn::kAllModels) {
    const auto mc = cycle.run_layer(ds, model, {32, 16}, 1);
    const auto ma = analytic.run_layer(ds, model, {32, 16}, 1);
    EXPECT_EQ(mc.partition_a, ma.partition_a) << gnn::model_name(model);
    EXPECT_EQ(mc.partition_b, ma.partition_b) << gnn::model_name(model);
    EXPECT_EQ(mc.num_subgraphs, ma.num_subgraphs) << gnn::model_name(model);
    EXPECT_EQ(mc.dram_bytes, ma.dram_bytes) << gnn::model_name(model);
  }
}

TEST(CrossEngine, FunctionalEngineAgreesOnLocalityStressGraph) {
  // A graph with strong id-locality (the regime the mapper exploits): the
  // distributed values must still match the golden executor exactly.
  Rng rng(31);
  graph::PowerLawParams gp;
  gp.n = 120;
  gp.undirected_edges = 500;
  gp.locality = 0.9;
  gp.locality_window = 0.05;
  const auto g = graph::generate_power_law(gp, rng);
  graph::Dataset ds;
  ds.graph = g;
  ds.degree_stats = graph::compute_degree_stats(g);
  gnn::Matrix x(g.num_vertices(), 10);
  x.randomize(rng);
  const auto params =
      gnn::make_reference_params(gnn::GnnModel::kGcn, 10, 5, rng);
  core::FunctionalEngine engine(tiny_config());
  const auto got = engine.run_layer(ds, gnn::GnnModel::kGcn, x, params);
  const auto want = gnn::reference_layer(gnn::GnnModel::kGcn, g, x, params);
  for (std::size_t r = 0; r < got.rows(); ++r) {
    EXPECT_LT(gnn::max_abs_diff(got.row(r), want.row(r)), 1e-9);
  }
}

// ------------------------------------------------- generator property sweep

TEST(GeneratorProperties, LocalityKnobControlsEdgeLocality) {
  auto local_fraction = [](double locality) {
    Rng rng(3);
    graph::PowerLawParams gp;
    gp.n = 2000;
    gp.undirected_edges = 8000;
    gp.locality = locality;
    gp.locality_window = 0.02;
    const auto g = graph::generate_power_law(gp, rng);
    const auto window = static_cast<std::int64_t>(0.02 * 2000);
    EdgeId local = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (VertexId u : g.neighbors(v)) {
        const auto d = std::abs(static_cast<std::int64_t>(v) -
                                static_cast<std::int64_t>(u));
        local += (d <= window);
      }
    }
    return static_cast<double>(local) / static_cast<double>(g.num_edges());
  };
  const double none = local_fraction(0.0);
  const double strong = local_fraction(0.8);
  EXPECT_GT(strong, none + 0.3);
}

TEST(GeneratorProperties, AlphaControlsSkew) {
  auto gini = [](double alpha) {
    Rng rng(9);
    graph::PowerLawParams gp;
    gp.n = 3000;
    gp.undirected_edges = 12000;
    gp.alpha = alpha;
    return graph::compute_degree_stats(graph::generate_power_law(gp, rng))
        .gini;
  };
  EXPECT_GT(gini(1.8), gini(3.5));
}

TEST(GeneratorProperties, DatasetDegreeStatsTrackSpecs) {
  // Reddit's synthetic stand-in must be the densest; citation graphs the
  // most skew-prone among the sparse ones.
  const auto cora = graph::make_dataset(graph::DatasetId::kCora, 0.2);
  const auto reddit = graph::make_dataset(graph::DatasetId::kReddit, 0.002);
  EXPECT_GT(reddit.degree_stats.mean_degree,
            5.0 * cora.degree_stats.mean_degree);
  EXPECT_GT(cora.degree_stats.gini, 0.2);
}


// -------------------------------------------------------------- batching

TEST(Batch, BlockDiagonalMergeAndExtract) {
  Rng rng(3);
  std::vector<graph::CsrGraph> members;
  members.push_back(graph::generate_ring(8));
  members.push_back(graph::generate_star(5));
  members.push_back(graph::generate_grid(3, 3));
  const graph::Batch batch = graph::make_batch(members);

  EXPECT_EQ(batch.num_members(), 3u);
  EXPECT_EQ(batch.graph.num_vertices(), 8u + 5 + 9);
  EdgeId total_edges = 0;
  for (const auto& g : members) total_edges += g.num_edges();
  EXPECT_EQ(batch.graph.num_edges(), total_edges);

  // Membership queries.
  EXPECT_EQ(batch.member_of(0), 0u);
  EXPECT_EQ(batch.member_of(8), 1u);
  EXPECT_EQ(batch.member_of(12), 1u);
  EXPECT_EQ(batch.member_of(13), 2u);
  EXPECT_EQ(batch.local_id(9), 1u);

  // No cross-member edges.
  for (VertexId v = 0; v < batch.graph.num_vertices(); ++v) {
    for (VertexId u : batch.graph.neighbors(v)) {
      EXPECT_EQ(batch.member_of(v), batch.member_of(u));
    }
  }

  // Round trip.
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto back = graph::extract_member(batch, i);
    EXPECT_EQ(back.row_ptr(), members[i].row_ptr());
    EXPECT_EQ(back.col_idx(), members[i].col_idx());
  }
}

TEST(Batch, BatchedInferenceEqualsPerGraphInference) {
  // EdgeConv on a batch of point clouds == EdgeConv per cloud: the
  // block-diagonal structure keeps members independent.
  Rng rng(5);
  std::vector<graph::CsrGraph> clouds;
  for (int i = 0; i < 3; ++i) {
    clouds.push_back(graph::generate_erdos_renyi(12, 30, rng));
  }
  const graph::Batch batch = graph::make_batch(clouds);

  const std::size_t f = 6, h = 4;
  Rng prng(9);
  const auto params =
      gnn::make_reference_params(gnn::GnnModel::kEdgeConv1, f, h, prng);
  gnn::Matrix x(batch.graph.num_vertices(), f);
  Rng xrng(11);
  x.randomize(xrng);

  const gnn::Matrix batched =
      gnn::reference_layer(gnn::GnnModel::kEdgeConv1, batch.graph, x, params);
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    gnn::Matrix xi(clouds[i].num_vertices(), f);
    for (VertexId v = 0; v < clouds[i].num_vertices(); ++v) {
      const auto src = x.row(batch.offsets[i] + v);
      std::copy(src.begin(), src.end(), xi.row(v).begin());
    }
    const gnn::Matrix solo =
        gnn::reference_layer(gnn::GnnModel::kEdgeConv1, clouds[i], xi, params);
    for (VertexId v = 0; v < clouds[i].num_vertices(); ++v) {
      EXPECT_LT(gnn::max_abs_diff(solo.row(v),
                                  batched.row(batch.offsets[i] + v)),
                1e-12);
    }
  }
}

TEST(Batch, RejectsEmpty) {
  EXPECT_THROW((void)graph::make_batch({}), Error);
}

// -------------------------------------------------------------- roofline

TEST(Roofline, ClassifiesDramBoundGcn) {
  core::AuroraConfig cfg = core::AuroraConfig::paper();
  core::AuroraAccelerator accel(cfg);
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 1.0);
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn,
                                 {ds.spec.feature_dim, 16}, 0);
  const auto r = core::analyze_roofline(m, cfg);
  EXPECT_GT(r.arithmetic_intensity, 0.0);
  EXPECT_GT(r.achieved_ops_per_cycle, 0.0);
  EXPECT_LE(r.efficiency, 1.05);  // cannot beat the roof (rounding slack)
  EXPECT_FALSE(r.summary().empty());
  // Low-AI GNN layers on a big chip: DRAM ceiling below compute ceiling.
  EXPECT_LT(r.dram_ceiling_ops_per_cycle, r.peak_ops_per_cycle);
  EXPECT_EQ(r.bound, core::Bound::kDram);
}

TEST(Roofline, ComputeBoundWhenChipIsTiny) {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  cfg.mode = core::SimMode::kAnalytic;
  core::AuroraAccelerator accel(cfg);
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.2);
  // Dense hidden layer: high intensity relative to a 16-PE chip.
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGin, {256, 256}, 1);
  const auto r = core::analyze_roofline(m, cfg);
  EXPECT_EQ(r.bound, core::Bound::kCompute);
}

}  // namespace
}  // namespace aurora
