// Golden-file and structural tests for the Perfetto trace exporter: the
// JSON must stay byte-stable for a fixed trace (regenerate with
// AURORA_REGEN_GOLDEN=1), parse as valid JSON, keep duration spans
// properly nested per track, and name its tracks consistently.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/perfetto.hpp"
#include "sim/trace.hpp"

namespace aurora {
namespace {

// ------------------------------------------------ minimal JSON checker

/// Recursive-descent validator for the JSON subset the exporter emits
/// (objects, arrays, strings without exotic escapes, numbers, literals).
/// Keeps the test dependency-free while still catching malformed output.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --------------------------------------------- flat trace-event scraping

/// One scraped traceEvents entry; only the fields the tests assert on.
struct ScrapedEvent {
  std::string ph;
  std::string name;
  long long pid = 0;
  long long tid = 0;
  long long ts = 0;
  long long dur = 0;
  std::string thread_name;  // args.name for thread_name metadata
};

long long scrape_int(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return 0;
  return std::atoll(obj.c_str() + at + needle.size());
}

std::string scrape_string(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  return obj.substr(begin, obj.find('"', begin) - begin);
}

/// Split the traceEvents array into per-event object strings. The exporter
/// emits flat objects (args sub-objects hold no '{'..'}' nesting beyond one
/// level), so brace counting is sufficient.
std::vector<ScrapedEvent> scrape_events(const std::string& json) {
  std::vector<ScrapedEvent> events;
  const std::size_t list = json.find("\"traceEvents\": [");
  EXPECT_NE(list, std::string::npos);
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = list; i < json.size(); ++i) {
    if (json[i] == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (json[i] == '}') {
      --depth;
      if (depth == 0) {
        const std::string obj = json.substr(start, i - start + 1);
        ScrapedEvent e;
        e.ph = scrape_string(obj, "ph");
        e.name = scrape_string(obj, "name");
        e.pid = scrape_int(obj, "pid");
        e.tid = scrape_int(obj, "tid");
        e.ts = scrape_int(obj, "ts");
        e.dur = scrape_int(obj, "dur");
        if (e.name == "thread_name") {
          const std::size_t args = obj.find("\"args\"");
          e.thread_name = scrape_string(obj.substr(args), "name");
        }
        events.push_back(e);
      }
    } else if (json[i] == ']' && depth == 0 && i > list + 16) {
      break;
    }
  }
  return events;
}

/// A fixed, deterministic trace exercising every record class the exporter
/// handles: tile lifecycle, phases, DRAM, compute spans, run marks,
/// packets, and cluster segments + halo traffic.
sim::Tracer make_golden_tracer() {
  using sim::TraceEvent;
  sim::Tracer t;
  t.enable();
  t.record(0, TraceEvent::kRunBegin, sim::kRunKindChip, 2);
  t.record(0, TraceEvent::kReconfigure, 6, 10);
  t.record(10, TraceEvent::kTileStart, 0, 12);
  t.record(10, TraceEvent::kDramRequest, 256, 0);
  t.record(10, TraceEvent::kDramSpan, 256, 8, 3, sim::pack_u32_pair(1, 0));
  t.record(18, TraceEvent::kPacketInjected, 4, 2);
  t.record(21, TraceEvent::kPacketDelivered, 4, 2);
  t.record(18, TraceEvent::kComputeSpan, 0, 20, 6, 14);
  t.record(18, TraceEvent::kPhaseSpan, 0, 9);
  t.record(27, TraceEvent::kPhaseSpan, 1, 11);
  t.record(38, TraceEvent::kDramSpan, 128, 6, 2, sim::pack_u32_pair(0, 0));
  t.record(44, TraceEvent::kTileStart, 1, 12);
  t.record(44, TraceEvent::kDramSpan, 256, 8, 2, sim::pack_u32_pair(1, 1));
  t.record(52, TraceEvent::kComputeSpan, 1, 16, 4, 12);
  t.record(52, TraceEvent::kPhaseSpan, 2, 16);
  t.record(68, TraceEvent::kDramSpan, 128, 6, 3, sim::pack_u32_pair(0, 0));
  t.record(80, TraceEvent::kRunEnd, 80, 6);
  t.record(80, TraceEvent::kRunBegin, sim::kRunKindCluster, 2);
  // Cluster segments encode arg0 = chip * 4 + segment kind
  // (0 compute-pre, 1 halo-wait, 2 compute-post).
  t.record(80, TraceEvent::kClusterSegment, 0 * 4 + 0, 30,
           12, sim::pack_u32_pair(5, 4));
  t.record(80, TraceEvent::kClusterSegment, 1 * 4 + 0, 28,
           10, sim::pack_u32_pair(6, 4));
  // Halo records: arg0 = src * 256 + dst route, arg1 = bytes, arg2 = layer.
  t.record(108, TraceEvent::kHaloSent, 1 * 256 + 0, 64, 0);
  t.record(110, TraceEvent::kHaloDelivered, 1 * 256 + 0, 64, 0);
  t.record(110, TraceEvent::kClusterSegment, 0 * 4 + 1, 1);
  t.record(108, TraceEvent::kClusterSegment, 1 * 4 + 1, 0);
  t.record(111, TraceEvent::kClusterSegment, 0 * 4 + 2, 9);
  t.record(108, TraceEvent::kClusterSegment, 1 * 4 + 2, 10);
  t.record(120, TraceEvent::kRunEnd, 120, 0);
  return t;
}

std::string golden_path() {
  return std::string(AURORA_SOURCE_DIR) +
         "/tests/data/perfetto_small.golden.json";
}

// --------------------------------------------------------------- tests

TEST(Perfetto, GoldenFileByteStable) {
  const sim::Tracer tracer = make_golden_tracer();
  const std::string json = sim::perfetto_trace_json(tracer);

  if (std::getenv("AURORA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << json;
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — run with AURORA_REGEN_GOLDEN=1 to create it";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "exporter output drifted from the golden file; if the change is "
         "intentional, regenerate with AURORA_REGEN_GOLDEN=1";
}

TEST(Perfetto, OutputIsValidJson) {
  const std::string json =
      sim::perfetto_trace_json(make_golden_tracer());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid());
}

TEST(Perfetto, SpansAreMonotoneAndNestedPerTrack) {
  const std::string json =
      sim::perfetto_trace_json(make_golden_tracer());
  const std::vector<ScrapedEvent> events = scrape_events(json);
  ASSERT_FALSE(events.empty());

  std::vector<ScrapedEvent> last_on_track;
  for (const ScrapedEvent& e : events) {
    if (e.ph != "X") continue;
    EXPECT_GE(e.dur, 0);
    bool found = false;
    for (ScrapedEvent& prev : last_on_track) {
      if (prev.pid != e.pid || prev.tid != e.tid) continue;
      found = true;
      // Monotone emission order per track...
      EXPECT_GE(e.ts, prev.ts) << "track (" << e.pid << "," << e.tid << ")";
      // ...and overlapping spans must nest: a span either starts after
      // the previous one ends, or closes no later than it.
      const bool disjoint = e.ts >= prev.ts + prev.dur;
      const bool nested = e.ts + e.dur <= prev.ts + prev.dur;
      EXPECT_TRUE(disjoint || nested)
          << "span \"" << e.name << "\" at ts=" << e.ts
          << " straddles the previous span on track (" << e.pid << ","
          << e.tid << ")";
      if (disjoint) prev = e;
      break;
    }
    if (!found) last_on_track.push_back(e);
  }
}

TEST(Perfetto, TrackNamingIsStable) {
  const std::string json =
      sim::perfetto_trace_json(make_golden_tracer());
  const std::vector<ScrapedEvent> events = scrape_events(json);

  std::set<std::string> names;
  for (const ScrapedEvent& e : events) {
    if (e.name == "thread_name") names.insert(e.thread_name);
  }
  // The single-chip tracks are always announced...
  EXPECT_TRUE(names.count("control"));
  EXPECT_TRUE(names.count("dram-stream"));
  EXPECT_TRUE(names.count("tile-compute"));
  // ...and the trace contains cluster segments for chips 0 and 1, so the
  // per-chip tracks must be named too.
  EXPECT_TRUE(names.count("chip0"));
  EXPECT_TRUE(names.count("chip1"));
}

TEST(Perfetto, MultiProcessExportNamesEveryProcess) {
  const sim::Tracer tracer = make_golden_tracer();
  sim::Tracer second = make_golden_tracer();
  const std::vector<sim::TraceProcess> processes = {
      {"cluster", &tracer, nullptr},
      {"chip-0", &second, nullptr},
  };
  const std::string json = sim::perfetto_trace_json(processes);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid());
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"chip-0\""), std::string::npos);

  const std::vector<ScrapedEvent> events = scrape_events(json);
  std::set<long long> pids;
  for (const ScrapedEvent& e : events) pids.insert(e.pid);
  EXPECT_EQ(pids.size(), 2u);
}

}  // namespace
}  // namespace aurora
