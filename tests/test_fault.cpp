// Tests for deterministic fault injection and failure-aware serving:
// seed-reproducible fault plans and their window-query semantics, link
// degradation and DRAM stalls staying bit-identical across engine flavours
// while only ever lengthening runs, fail-stop failover and shard-parallel
// fallback in the cluster scheduler, and the serving engine's retry/backoff,
// proactive-shedding and conservation guarantees.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "cluster/cluster_scheduler.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "serving/request_queue.hpp"
#include "serving/serving_engine.hpp"

namespace aurora {
namespace {

graph::Dataset make_test_dataset(VertexId n, EdgeId undirected_edges,
                                 std::uint64_t seed) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec.name = "fault-test";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_erdos_renyi(n, undirected_edges, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.spec.num_directed_edges = ds.graph.num_edges();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

core::AuroraConfig small_config() {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  return cfg;
}

fault::FaultParams chip_fault_params(std::uint64_t seed, double mtbf,
                                     double mttr,
                                     Cycle horizon = 1'000'000) {
  fault::FaultParams p;
  p.seed = seed;
  p.horizon = horizon;
  p.chip_mtbf = mtbf;
  p.chip_mttr = mttr;
  return p;
}

// ---------------------------------------------------------------- plans

TEST(FaultPlan, GenerateIsDeterministic) {
  fault::FaultParams p = chip_fault_params(42, 5'000.0, 2'000.0);
  p.link_mtbf = 8'000.0;
  p.link_mttr = 3'000.0;
  p.dram_mtbf = 10'000.0;
  p.dram_mttr = 1'000.0;
  const fault::FaultPlan a = fault::FaultPlan::generate(p, 3);
  const fault::FaultPlan b = fault::FaultPlan::generate(p, 3);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.timeline(), b.timeline());
  EXPECT_EQ(a.events().size(), b.events().size());

  fault::FaultParams q = p;
  q.seed = 43;
  const fault::FaultPlan c = fault::FaultPlan::generate(q, 3);
  EXPECT_NE(a.timeline(), c.timeline());
}

TEST(FaultPlan, EmptyPlanIsInert) {
  const fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.chip_down_at(0, 123));
  EXPECT_EQ(plan.chip_up_after(0, 123), 123u);
  EXPECT_EQ(plan.chip_down_in(0, 0, fault::kNever), fault::kNever);
  EXPECT_DOUBLE_EQ(plan.wire_multiplier_at(0, 1, 500), 1.0);
  EXPECT_DOUBLE_EQ(plan.max_link_multiplier(), 1.0);
  EXPECT_EQ(plan.timeline(), "");

  // Disabled params (horizon == 0) also generate an inert plan.
  fault::FaultParams off;
  off.chip_mtbf = 100.0;
  const fault::FaultPlan disabled = fault::FaultPlan::generate(off, 2);
  EXPECT_TRUE(disabled.empty());
}

TEST(FaultPlan, ChipQueriesMatchGeneratedWindows) {
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(chip_fault_params(7, 3'000.0, 1'500.0), 4);
  std::size_t checked = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (const fault::DownWindow& w : plan.chip_windows(c)) {
      // [begin, end) semantics.
      EXPECT_TRUE(plan.chip_down_at(c, w.begin));
      EXPECT_EQ(plan.chip_up_after(c, w.begin), w.end);
      if (w.end != fault::kNever) {
        EXPECT_FALSE(plan.chip_down_at(c, w.end));
        EXPECT_EQ(plan.chip_up_after(c, w.end), w.end);
        EXPECT_TRUE(plan.chip_down_at(c, w.end - 1));
      }
      // chip_down_in is exclusive at `after`: a failure exactly at the
      // dispatch cycle was already handled by chip_up_after.
      EXPECT_EQ(plan.chip_down_in(c, w.begin, w.begin + 1), fault::kNever);
      ASSERT_GT(w.begin, 0u);
      EXPECT_EQ(plan.chip_down_in(c, w.begin - 1, w.begin + 1), w.begin);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u) << "fault params too mild to exercise queries";
}

TEST(FaultPlan, MttrZeroMeansPermanentFailStop) {
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(chip_fault_params(3, 1'000.0, 0.0), 2);
  for (std::uint32_t c = 0; c < 2; ++c) {
    const auto& windows = plan.chip_windows(c);
    ASSERT_EQ(windows.size(), 1u) << "fail-stop chips fail exactly once";
    EXPECT_EQ(windows[0].end, fault::kNever);
    EXPECT_EQ(plan.chip_up_after(c, windows[0].begin), fault::kNever);
  }
}

TEST(FaultPlan, ChipAndDramStreamsStableAcrossChipCount) {
  // Adding chips must not perturb existing chips' schedules (decorrelated
  // per-entity sub-streams): chip and DRAM windows, not wires, whose index
  // space depends on the chip count.
  fault::FaultParams p = chip_fault_params(11, 4'000.0, 2'000.0);
  p.dram_mtbf = 6'000.0;
  p.dram_mttr = 500.0;
  const fault::FaultPlan two = fault::FaultPlan::generate(p, 2);
  const fault::FaultPlan four = fault::FaultPlan::generate(p, 4);
  for (std::uint32_t c = 0; c < 2; ++c) {
    ASSERT_EQ(two.chip_windows(c).size(), four.chip_windows(c).size());
    for (std::size_t i = 0; i < two.chip_windows(c).size(); ++i) {
      EXPECT_EQ(two.chip_windows(c)[i].begin, four.chip_windows(c)[i].begin);
      EXPECT_EQ(two.chip_windows(c)[i].end, four.chip_windows(c)[i].end);
    }
    ASSERT_EQ(two.dram_windows(c).size(), four.dram_windows(c).size());
    for (std::size_t i = 0; i < two.dram_windows(c).size(); ++i) {
      EXPECT_EQ(two.dram_windows(c)[i].begin, four.dram_windows(c)[i].begin);
      EXPECT_EQ(two.dram_windows(c)[i].end, four.dram_windows(c)[i].end);
    }
  }
}

// ------------------------------------------------- link degradation

TEST(LinkFaults, DegradationLengthensRunsAndKeepsFlavoursIdentical) {
  const graph::Dataset ds = make_test_dataset(160, 480, 5);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);

  cluster::ClusterParams params;
  params.num_chips = 2;
  params.link.topology = cluster::ClusterTopology::kRing;
  params.link.bytes_per_cycle = 8;

  fault::FaultParams fp;
  fp.seed = 21;
  fp.horizon = 2'000'000;
  fp.link_mtbf = 1'000.0;
  fp.link_mttr = 4'000.0;
  fp.link_multiplier_min = 4.0;
  fp.link_multiplier_max = 8.0;
  const auto plan = std::make_shared<fault::FaultPlan>(
      fault::FaultPlan::generate(fp, params.num_chips));
  ASSERT_FALSE(plan->empty());

  const auto run = [&](bool fast_forward, bool parallel,
                       bool faulty) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    cluster::ClusterParams p = params;
    p.parallel = parallel;
    p.parallel_jobs = parallel ? 2 : 0;
    if (faulty) p.fault_plan = plan;
    cluster::ClusterEngine engine(cfg, p);
    return engine.run(ds, job);
  };

  const cluster::ClusterRunMetrics healthy = run(false, false, false);
  const cluster::ClusterRunMetrics faulty = run(false, false, true);
  // Degradation stretches wire serialisation; it can never create or drop
  // traffic, and a >= 1 multiplier can only lengthen the run.
  EXPECT_GT(faulty.link.degraded_sends, 0u);
  EXPECT_GT(faulty.link.degraded_extra_cycles, 0u);
  EXPECT_EQ(faulty.link.bytes_delivered, healthy.link.bytes_delivered);
  EXPECT_EQ(faulty.link.messages_delivered, healthy.link.messages_delivered);
  EXPECT_GE(faulty.total_cycles, healthy.total_cycles);

  // All four engine flavours agree bit for bit on the degraded run.
  EXPECT_TRUE(
      cluster::diff_cluster_run_metrics(faulty, run(true, false, true))
          .empty());
  EXPECT_TRUE(
      cluster::diff_cluster_run_metrics(faulty, run(false, true, true))
          .empty());
  EXPECT_TRUE(
      cluster::diff_cluster_run_metrics(faulty, run(true, true, true))
          .empty());
}

// ------------------------------------------------------- DRAM stalls

TEST(DramFaults, StallsLengthenRunsAndKeepModesIdentical) {
  const graph::Dataset ds = make_test_dataset(120, 360, 9);
  const gnn::LayerConfig layer{8, 8};

  const auto run = [&](bool fast_forward, bool stalls) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    cfg.check_invariants = true;
    if (stalls) {
      cfg.dram.stall_windows = {
          {dram::DramStallWindow::kAllChannels, 200, 4'000},
          {dram::DramStallWindow::kAllChannels, 6'000, 9'000},
          {0, 12'000, 20'000}};
    }
    core::AuroraAccelerator accel(cfg);
    return accel.run_layer(ds, gnn::GnnModel::kGcn, layer, 0);
  };

  const core::RunMetrics healthy = run(false, false);
  const core::RunMetrics stalled = run(false, true);
  EXPECT_GE(stalled.total_cycles, healthy.total_cycles);
  // Stalls delay issue; they never lose requests.
  EXPECT_EQ(stalled.dram_bytes, healthy.dram_bytes);
  EXPECT_EQ(stalled.dram_accesses, healthy.dram_accesses);

  const core::RunMetrics stalled_ff = run(true, true);
  EXPECT_TRUE(core::diff_run_metrics(stalled, stalled_ff).empty());
}

// ------------------------------------------------- scheduler failover

/// First cycle at which `down` is inside a repairable window of `chip`
/// while every other chip is up; nullopt if the plan never has one.
std::optional<Cycle> find_lopsided_down_cycle(const fault::FaultPlan& plan,
                                              std::uint32_t chip,
                                              std::uint32_t num_chips) {
  for (const fault::DownWindow& w : plan.chip_windows(chip)) {
    if (w.end == fault::kNever) continue;
    const Cycle mid = w.begin + (w.end - w.begin) / 2;
    bool others_up = true;
    for (std::uint32_t c = 0; c < num_chips; ++c) {
      if (c != chip && plan.chip_down_at(c, mid)) others_up = false;
    }
    if (others_up) return mid;
  }
  return std::nullopt;
}

TEST(Failover, DataParallelDispatchAvoidsDownChips) {
  const graph::Dataset ds = make_test_dataset(96, 280, 13);
  cluster::ClusterParams params;
  params.num_chips = 2;

  const auto plan = std::make_shared<fault::FaultPlan>(fault::FaultPlan::generate(
      chip_fault_params(17, 40'000.0, 60'000.0, 2'000'000), 2));
  const std::optional<Cycle> when = find_lopsided_down_cycle(*plan, 0, 2);
  ASSERT_TRUE(when.has_value()) << "fault params never downed chip 0 alone";

  cluster::ClusterScheduler scheduler(small_config(), params);
  scheduler.set_fault_plan(plan);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  const cluster::ClusterOutcome outcome =
      scheduler.serve(ds, {job, "r0"}, cluster::DispatchMode::kDataParallel,
                      /*not_before=*/*when);
  EXPECT_FALSE(outcome.no_capacity);
  EXPECT_EQ(outcome.chip, 1u) << "dispatch picked the downed chip";
  EXPECT_GE(outcome.start_cycle, *when);
  EXPECT_FALSE(plan->chip_down_at(outcome.chip, outcome.start_cycle));
  if (outcome.failed) {
    // A later failure on the serving chip collapses the attempt to the
    // failure instant.
    EXPECT_EQ(outcome.finish_cycle, outcome.failed_at);
  }
}

TEST(Failover, AllChipsPermanentlyDownReportsNoCapacity) {
  const graph::Dataset ds = make_test_dataset(64, 180, 23);
  cluster::ClusterParams params;
  params.num_chips = 2;

  // MTTR 0: both chips fail-stop within the horizon and never recover.
  const auto plan = std::make_shared<fault::FaultPlan>(
      fault::FaultPlan::generate(chip_fault_params(29, 500.0, 0.0, 100'000), 2));
  Cycle all_dead_at = 0;
  for (std::uint32_t c = 0; c < 2; ++c) {
    ASSERT_EQ(plan->chip_windows(c).size(), 1u);
    all_dead_at = std::max(all_dead_at, plan->chip_windows(c)[0].begin);
  }

  cluster::ClusterScheduler scheduler(small_config(), params);
  scheduler.set_fault_plan(plan);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  const cluster::ClusterOutcome outcome =
      scheduler.serve(ds, {job, "r0"}, cluster::DispatchMode::kDataParallel,
                      /*not_before=*/all_dead_at);
  EXPECT_TRUE(outcome.no_capacity);
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.start_cycle, all_dead_at);
  EXPECT_EQ(outcome.finish_cycle, all_dead_at);
}

TEST(Failover, ShardParallelFallsBackToDataParallel) {
  const graph::Dataset ds = make_test_dataset(96, 280, 31);
  cluster::ClusterParams params;
  params.num_chips = 2;
  params.link.topology = cluster::ClusterTopology::kRing;

  const auto plan = std::make_shared<fault::FaultPlan>(fault::FaultPlan::generate(
      chip_fault_params(37, 40'000.0, 60'000.0, 2'000'000), 2));
  const std::optional<Cycle> when = find_lopsided_down_cycle(*plan, 1, 2);
  ASSERT_TRUE(when.has_value()) << "fault params never downed chip 1 alone";

  cluster::ClusterScheduler scheduler(small_config(), params);
  scheduler.set_fault_plan(plan);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  const cluster::ClusterOutcome outcome =
      scheduler.serve(ds, {job, "r0"}, cluster::DispatchMode::kShardParallel,
                      /*not_before=*/*when);
  // A gang chip is down at the probed start, so the request re-routes
  // through a data-parallel placement on the survivor.
  EXPECT_TRUE(outcome.shard_fallback);
  EXPECT_FALSE(outcome.no_capacity);
  EXPECT_EQ(outcome.chip, 0u);
  EXPECT_FALSE(plan->chip_down_at(outcome.chip, outcome.start_cycle));
}

TEST(Failover, EmptyPlanLeavesSchedulerBitIdentical) {
  const graph::Dataset ds = make_test_dataset(96, 280, 41);
  cluster::ClusterParams params;
  params.num_chips = 2;
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);

  const auto serve_three = [&](std::shared_ptr<const fault::FaultPlan> plan) {
    cluster::ClusterScheduler scheduler(small_config(), params);
    scheduler.set_fault_plan(std::move(plan));
    std::vector<cluster::ClusterOutcome> outcomes;
    for (int i = 0; i < 3; ++i) {
      outcomes.push_back(scheduler.serve(
          ds, {job, "r"}, cluster::DispatchMode::kDataParallel, 100 * i));
    }
    return outcomes;
  };

  const auto without = serve_three(nullptr);
  const auto with = serve_three(std::make_shared<fault::FaultPlan>());
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i].chip, with[i].chip);
    EXPECT_EQ(without[i].start_cycle, with[i].start_cycle);
    EXPECT_EQ(without[i].finish_cycle, with[i].finish_cycle);
    EXPECT_FALSE(with[i].failed);
  }
}

// ------------------------------------------------- serving engine

std::vector<serving::ModelMixEntry> small_mix(
    const graph::DatasetSpec& spec) {
  return {{core::GnnJob::two_layer(gnn::GnnModel::kGcn, spec, 8), "gcn", 1.0,
           0}};
}

serving::ServingParams serving_fault_params(std::uint64_t seed) {
  serving::ServingParams p;
  p.seed = seed;
  p.num_requests = 12;
  p.queue_depth = 0;  // unbounded: no admission shedding in these tests
  p.max_batch = 2;
  p.arrival.rate_per_mcycle = 120.0;
  p.faults.seed = seed * 977 + 1;
  p.faults.horizon = 8'000'000;
  p.faults.chip_mtbf = 20'000.0;
  p.faults.chip_mttr = 30'000.0;
  return p;
}

void expect_conserved(const serving::ServingReport& r) {
  EXPECT_EQ(r.admitted + r.shed, r.generated);
  EXPECT_EQ(r.admitted,
            r.served.size() + r.shed_expired + r.failed_permanently);
}

TEST(ServingFaults, RetriesRespectCapAndConservationHolds) {
  const graph::Dataset ds = make_test_dataset(96, 280, 47);
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 2;

  bool saw_failures = false;
  for (std::uint64_t seed = 1; seed <= 12 && !saw_failures; ++seed) {
    serving::ServingParams params = serving_fault_params(seed);
    params.max_retries = 3;
    serving::ServingEngine engine(small_config(), cluster_params, params);
    const serving::ServingReport report = engine.run(ds, small_mix(ds.spec));
    expect_conserved(report);
    EXPECT_LE(report.retries, report.failed_attempts);
    std::uint64_t failed_over = 0;
    for (const serving::ServedRequest& r : report.served) {
      EXPECT_LE(r.retries, params.max_retries);
      EXPECT_EQ(r.failed_over, r.retries > 0);
      if (r.failed_over) ++failed_over;
    }
    EXPECT_EQ(report.failed_over, failed_over);
    if (report.failed_attempts > 0) saw_failures = true;
  }
  EXPECT_TRUE(saw_failures)
      << "fault params never produced a mid-flight failure in 12 seeds";
}

TEST(ServingFaults, ZeroRetriesFailPermanentlyOnFirstFault) {
  const graph::Dataset ds = make_test_dataset(96, 280, 53);
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 2;

  bool saw_permanent = false;
  for (std::uint64_t seed = 1; seed <= 12 && !saw_permanent; ++seed) {
    serving::ServingParams params = serving_fault_params(seed);
    params.max_retries = 0;
    serving::ServingEngine engine(small_config(), cluster_params, params);
    const serving::ServingReport report = engine.run(ds, small_mix(ds.spec));
    expect_conserved(report);
    // With no retry budget, no request is ever re-queued or failed over.
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.failed_over, 0u);
    for (const serving::ServedRequest& r : report.served) {
      EXPECT_EQ(r.retries, 0u);
    }
    if (report.failed_permanently > 0) saw_permanent = true;
  }
  EXPECT_TRUE(saw_permanent)
      << "fault params never failed a request in 12 seeds";
}

TEST(ServingFaults, FaultyRunsBitIdenticalAcrossEngineFlavours) {
  const graph::Dataset ds = make_test_dataset(96, 280, 59);
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 2;
  serving::ServingParams params = serving_fault_params(4);
  params.mode = cluster::DispatchMode::kShardParallel;

  const auto run = [&](bool fast_forward, bool parallel) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    cluster::ClusterParams cp = cluster_params;
    cp.parallel = parallel;
    cp.parallel_jobs = parallel ? 2 : 0;
    serving::ServingEngine engine(cfg, cp, params);
    return engine.run(ds, small_mix(ds.spec));
  };

  const serving::ServingReport base = run(false, false);
  expect_conserved(base);
  EXPECT_TRUE(serving::diff_serving_reports(base, run(true, false)).empty());
  EXPECT_TRUE(serving::diff_serving_reports(base, run(false, true)).empty());
  EXPECT_TRUE(serving::diff_serving_reports(base, run(true, true)).empty());
}

TEST(ServingFaults, EmptyPlanOverrideMatchesFaultlessRun) {
  const graph::Dataset ds = make_test_dataset(96, 280, 61);
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 2;

  serving::ServingParams params;
  params.seed = 5;
  params.num_requests = 10;
  params.arrival.rate_per_mcycle = 150.0;

  serving::ServingEngine plain(small_config(), cluster_params, params);
  const serving::ServingReport baseline = plain.run(ds, small_mix(ds.spec));

  serving::ServingEngine overridden(small_config(), cluster_params, params);
  overridden.set_fault_plan(std::make_shared<fault::FaultPlan>());
  const serving::ServingReport with_empty =
      overridden.run(ds, small_mix(ds.spec));
  EXPECT_TRUE(serving::diff_serving_reports(baseline, with_empty).empty());
  EXPECT_EQ(with_empty.failed_attempts, 0u);
  EXPECT_EQ(with_empty.shed_expired, 0u);
}

// ------------------------------------------------- proactive shedding

serving::ServingRequest timed_request(std::uint64_t id, Cycle arrival,
                                      Cycle deadline) {
  serving::ServingRequest r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = deadline;
  r.compat_key = "k";
  return r;
}

TEST(ProactiveShedding, QueueExpiresOnlyWhenEnabled) {
  serving::RequestQueue proactive(0, /*proactive_shedding=*/true);
  EXPECT_TRUE(proactive.admit(timed_request(0, 0, 10)));
  EXPECT_TRUE(proactive.admit(timed_request(1, 0, 20)));
  EXPECT_TRUE(proactive.admit(timed_request(2, 0, serving::kNoDeadline)));
  const auto popped = proactive.pop(/*now=*/15);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 1u) << "expired request 0 should have been shed";
  EXPECT_EQ(proactive.shed_expired(), 1u);
  EXPECT_EQ(proactive.size(), 1u);
  // A deadline exactly at `now` is still servable (finish <= deadline can
  // no longer hold, but the cut is deadline < now by design: shedding is
  // conservative).
  EXPECT_TRUE(proactive.admit(timed_request(3, 0, 15)));
  const auto at_deadline = proactive.pop(/*now=*/15);
  ASSERT_TRUE(at_deadline.has_value());
  EXPECT_EQ(at_deadline->id, 3u);
  EXPECT_EQ(proactive.shed_expired(), 1u);

  serving::RequestQueue lazy(0, /*proactive_shedding=*/false);
  EXPECT_TRUE(lazy.admit(timed_request(0, 0, 10)));
  const auto late = lazy.pop(/*now=*/15);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->id, 0u) << "without proactive shedding the expired "
                             "request is still dispatched";
  EXPECT_EQ(lazy.shed_expired(), 0u);
}

TEST(ProactiveShedding, EngineCountsShedExpiredUnderOverload) {
  const graph::Dataset ds = make_test_dataset(128, 400, 67);
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 1;

  serving::ServingParams params;
  params.seed = 9;
  params.num_requests = 32;
  params.queue_depth = 0;
  params.max_batch = 1;
  // Far past saturation with an SLO shorter than one service time: every
  // queued request misses its deadline before a slot opens.
  params.arrival.rate_per_mcycle = 20'000.0;
  params.slo_cycles = 2'000;

  params.proactive_shedding = false;
  serving::ServingEngine lazy(small_config(), cluster_params, params);
  const serving::ServingReport lazy_report = lazy.run(ds, small_mix(ds.spec));
  expect_conserved(lazy_report);
  EXPECT_EQ(lazy_report.shed_expired, 0u);
  EXPECT_EQ(lazy_report.served.size(), lazy_report.admitted);

  params.proactive_shedding = true;
  serving::ServingEngine shedding(small_config(), cluster_params, params);
  const serving::ServingReport shed_report =
      shedding.run(ds, small_mix(ds.spec));
  expect_conserved(shed_report);
  EXPECT_GT(shed_report.shed_expired, 0u);
  EXPECT_LT(shed_report.served.size(), lazy_report.served.size());
  // Shedding only drops requests that could not have met the SLO anyway,
  // so it never reduces goodput.
  EXPECT_GE(shed_report.met_slo_count(), lazy_report.met_slo_count());
}

}  // namespace
}  // namespace aurora
