// Tests for the baseline accelerator cost models: Table I coverage, basic
// cost-model sanity, and the qualitative orderings the Aurora paper reports.
#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "core/aurora.hpp"

namespace aurora::baselines {
namespace {

ChipParams bench_chip() {
  // Matches AuroraConfig::bench(): 16x16 PEs x 8 MACs, 100 KB per PE.
  return chip_params_matching(16, 8, 100 * 1024);
}

graph::Dataset cora(double scale = 0.2) {
  return graph::make_dataset(graph::DatasetId::kCora, scale);
}

gnn::Workflow gcn_workflow(const graph::Dataset& ds, std::uint32_t f = 64,
                           std::uint32_t h = 16) {
  return gnn::generate_workflow(gnn::GnnModel::kGcn, {f, h},
                                ds.num_vertices(), ds.num_edges());
}

TEST(Baselines, NamesAndFactory) {
  for (BaselineId id : kAllBaselines) {
    const auto model = make_baseline(id, bench_chip());
    EXPECT_STREQ(model->name(), baseline_name(id));
  }
}

TEST(Baselines, TableICoverage) {
  const auto chip = bench_chip();
  // HyGCN / AWB-GCN / GCNAX: C-GCN only.
  for (BaselineId id :
       {BaselineId::kHyGcn, BaselineId::kAwbGcn, BaselineId::kGcnax}) {
    const auto model = make_baseline(id, chip);
    EXPECT_TRUE(model->supports(gnn::GnnModel::kGcn)) << model->name();
    EXPECT_FALSE(model->supports(gnn::GnnModel::kVanillaAttention))
        << model->name();
    EXPECT_FALSE(model->supports(gnn::GnnModel::kEdgeConv1)) << model->name();
  }
  // ReGNN: C-GNN + MP-GNN, no attention.
  const auto regnn = make_baseline(BaselineId::kRegnn, chip);
  EXPECT_TRUE(regnn->supports(gnn::GnnModel::kGcn));
  EXPECT_TRUE(regnn->supports(gnn::GnnModel::kGGcn));
  EXPECT_FALSE(regnn->supports(gnn::GnnModel::kAgnn));
  // FlowGNN: everything.
  const auto flow = make_baseline(BaselineId::kFlowGnn, chip);
  for (gnn::GnnModel m : gnn::kAllModels) {
    EXPECT_TRUE(flow->supports(m)) << gnn::model_name(m);
  }
  // Only FlowGNN and ReGNN do message passing (Table I).
  EXPECT_TRUE(flow->coverage().message_passing);
  EXPECT_TRUE(regnn->coverage().message_passing);
  EXPECT_FALSE(make_baseline(BaselineId::kHyGcn, chip)
                   ->coverage()
                   .message_passing);
  // Nobody but GCNAX claims flexible dataflow; nobody has a flexible NoC.
  for (BaselineId id : kAllBaselines) {
    const auto model = make_baseline(id, chip);
    EXPECT_FALSE(model->coverage().flexible_noc) << model->name();
    EXPECT_FALSE(model->coverage().flexible_in_unified) << model->name();
  }
}

class BaselineSanity : public ::testing::TestWithParam<BaselineId> {};

TEST_P(BaselineSanity, ProducesPositiveMetrics) {
  const auto model = make_baseline(GetParam(), bench_chip());
  const auto ds = cora();
  const auto wf = gcn_workflow(ds);
  const auto m = model->run_layer(ds, wf, {});
  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_GT(m.dram_bytes, 0u);
  EXPECT_GT(m.onchip_comm_cycles, 0u);
  EXPECT_GT(m.energy.total_pj(), 0.0);
  // Total time can never be below any single component.
  EXPECT_GE(m.total_cycles, m.dram_cycles);
  EXPECT_GE(m.total_cycles, m.onchip_comm_cycles);
}

TEST_P(BaselineSanity, ScalesWithGraphSize) {
  const auto model = make_baseline(GetParam(), bench_chip());
  const auto small = cora(0.1);
  const auto big = cora(0.4);
  const auto ms = model->run_layer(small, gcn_workflow(small), {});
  const auto mb = model->run_layer(big, gcn_workflow(big), {});
  EXPECT_GT(mb.total_cycles, ms.total_cycles);
  EXPECT_GT(mb.dram_bytes, ms.dram_bytes);
}

TEST_P(BaselineSanity, DeterministicModel) {
  const auto model = make_baseline(GetParam(), bench_chip());
  const auto ds = cora();
  const auto wf = gcn_workflow(ds);
  const auto a = model->run_layer(ds, wf, {});
  const auto b = model->run_layer(ds, wf, {});
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineSanity,
                         ::testing::ValuesIn(kAllBaselines),
                         [](const auto& param_info) {
                           std::string n = baseline_name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ------------------------------------------------- paper-shape expectations

TEST(BaselineShapes, AuroraBeatsEveryBaselineOnDram) {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.mode = core::SimMode::kAnalytic;
  core::AuroraAccelerator aurora_accel(cfg);
  const auto ds = cora(0.5);
  const gnn::LayerConfig layer{ds.spec.feature_dim, 16};
  const auto aurora_m = aurora_accel.run_layer(ds, gnn::GnnModel::kGcn, layer, 0);

  const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn, layer,
                                         ds.num_vertices(), ds.num_edges());
  core::DramTrafficParams tp;
  tp.sparse_input_features = true;
  tp.input_feature_density = ds.spec.feature_density;
  for (BaselineId id : kAllBaselines) {
    const auto model = make_baseline(id, bench_chip());
    const auto m = model->run_layer(ds, wf, tp);
    EXPECT_GT(m.dram_bytes, aurora_m.dram_bytes) << model->name();
  }
}

TEST(BaselineShapes, HyGcnIsTheSlowest) {
  const auto ds = cora(0.5);
  const gnn::LayerConfig layer{ds.spec.feature_dim, 16};
  const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn, layer,
                                         ds.num_vertices(), ds.num_edges());
  core::DramTrafficParams tp;
  tp.sparse_input_features = true;
  tp.input_feature_density = ds.spec.feature_density;
  const auto chip = bench_chip();
  const auto hygcn =
      make_baseline(BaselineId::kHyGcn, chip)->run_layer(ds, wf, tp);
  for (BaselineId id : {BaselineId::kGcnax, BaselineId::kRegnn,
                        BaselineId::kFlowGnn}) {
    const auto m = make_baseline(id, chip)->run_layer(ds, wf, tp);
    EXPECT_GT(hygcn.total_cycles, m.total_cycles) << baseline_name(id);
  }
}

TEST(BaselineShapes, RedundancyEliminationCutsRegnnOps) {
  const auto ds = cora(0.5);
  const auto wf = gcn_workflow(ds);
  const auto chip = bench_chip();
  const auto regnn =
      make_baseline(BaselineId::kRegnn, chip)->run_layer(ds, wf, {});
  // ReGNN executes fewer arithmetic ops than the workflow demands.
  EXPECT_LT(regnn.events.fp_multiplies + regnn.events.fp_adds,
            wf.total_ops());
}

TEST(BaselineShapes, WeightDuplicationHurtsAwbOnBigFeatures) {
  // With large feature matrices the duplication-shrunk buffer forces
  // re-reads: AWB-GCN's DRAM grows faster than GCNAX's.
  const auto chip = bench_chip();
  const auto small_ds = cora(0.2);
  const auto big_ds = graph::make_dataset(graph::DatasetId::kPubmed, 0.4);
  const auto awb = make_baseline(BaselineId::kAwbGcn, chip);
  const auto gcnax = make_baseline(BaselineId::kGcnax, chip);
  const auto ratio = [&](const graph::Dataset& ds) {
    const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn,
                                           {ds.spec.feature_dim, 16},
                                           ds.num_vertices(), ds.num_edges());
    const auto a = awb->run_layer(ds, wf, {});
    const auto g = gcnax->run_layer(ds, wf, {});
    return static_cast<double>(a.dram_bytes) / static_cast<double>(g.dram_bytes);
  };
  EXPECT_GE(ratio(big_ds), 1.0);
  (void)small_ds;
}

}  // namespace
}  // namespace aurora::baselines
