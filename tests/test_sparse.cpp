// Tests for the sparse feature-matrix representation and kernels.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gnn/sparse.hpp"

namespace aurora::gnn {
namespace {

TEST(Sparse, FromDenseToDenseRoundTrip) {
  Rng rng(3);
  Matrix dense(10, 7);
  dense.randomize(rng);
  // Zero out most entries.
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      if ((r + c) % 3 != 0) dense.at(r, c) = 0.0;
    }
  }
  const SparseMatrix s = SparseMatrix::from_dense(dense);
  EXPECT_EQ(s.rows(), 10u);
  EXPECT_EQ(s.cols(), 7u);
  const Matrix back = s.to_dense();
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_LT(max_abs_diff(back.row(r), dense.row(r)), 1e-15);
  }
}

TEST(Sparse, RandomDensityAndDeterminism) {
  Rng r1(5), r2(5);
  const SparseMatrix a = SparseMatrix::random(100, 200, 0.05, r1);
  const SparseMatrix b = SparseMatrix::random(100, 200, 0.05, r2);
  EXPECT_NEAR(a.density(), 0.05, 0.01);
  EXPECT_EQ(a.nnz(), b.nnz());
  for (std::size_t r = 0; r < 100; ++r) {
    const auto ia = a.row_indices(r);
    const auto ib = b.row_indices(r);
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i) EXPECT_EQ(ia[i], ib[i]);
  }
}

TEST(Sparse, StoredBytesFollowNnz) {
  Rng rng(7);
  const SparseMatrix s = SparseMatrix::random(50, 100, 0.1, rng);
  EXPECT_EQ(s.stored_bytes(8), s.nnz() * 12);
  EXPECT_LT(s.stored_bytes(8), 50u * 100 * 8);  // beats dense at 10 %
}

TEST(Sparse, RowMatVecMatchesDense) {
  Rng rng(11);
  const SparseMatrix s = SparseMatrix::random(20, 30, 0.2, rng);
  Matrix w(6, 30);
  w.randomize(rng);
  const Matrix dense = s.to_dense();
  for (std::size_t r = 0; r < 20; ++r) {
    const Vector got = s.row_mat_vec(w, r);
    const Vector want = mat_vec(w, dense.row(r));
    EXPECT_LT(max_abs_diff(got, want), 1e-12) << "row " << r;
  }
}

TEST(Sparse, AddScaledRowMatchesDenseAxpy) {
  Rng rng(13);
  const SparseMatrix s = SparseMatrix::random(10, 16, 0.3, rng);
  const Matrix dense = s.to_dense();
  Vector acc_sparse(16, 1.0), acc_dense(16, 1.0);
  s.add_scaled_row(acc_sparse, 2.5, 4);
  accumulate(acc_dense, scalar_mul(2.5, dense.row(4)));
  EXPECT_LT(max_abs_diff(acc_sparse, acc_dense), 1e-12);
}

TEST(Sparse, RejectsBadInputs) {
  EXPECT_THROW((void)[] {
    Rng rng(1);
    return SparseMatrix::random(4, 4, 0.0, rng);
  }(), Error);
  Rng rng(2);
  const SparseMatrix s = SparseMatrix::random(4, 4, 0.5, rng);
  Matrix w(2, 5);  // wrong inner dimension
  EXPECT_THROW((void)s.row_mat_vec(w, 0), Error);
}

TEST(Sparse, EmptyRowsAreRepresentable) {
  Matrix dense(3, 4, 0.0);
  dense.at(1, 2) = 5.0;
  const SparseMatrix s = SparseMatrix::from_dense(dense);
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_TRUE(s.row_indices(0).empty());
  EXPECT_EQ(s.row_indices(1)[0], 2u);
  Vector acc(4, 0.0);
  s.add_scaled_row(acc, 1.0, 0);  // no-op
  EXPECT_DOUBLE_EQ(acc[2], 0.0);
}

}  // namespace
}  // namespace aurora::gnn
