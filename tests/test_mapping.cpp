// Tests for Algorithm 1: N-queen S_PE placement, high-degree classification,
// degree-aware vs hashing mapping, and the derived bypass configuration.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "mapping/mapper.hpp"
#include "mapping/nqueen.hpp"
#include "mapping/quality.hpp"

namespace aurora::mapping {
namespace {

using graph::generate_power_law;
using graph::generate_star;

class NQueenSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NQueenSizes, PlacementSatisfiesQueenConstraints) {
  const std::uint32_t k = GetParam();
  const auto placement = identify_s_pes(k);
  ASSERT_EQ(placement.size(), k);
  EXPECT_TRUE(is_valid_queen_placement(placement));
  // One per row and one per column.
  std::set<std::uint32_t> rows, cols;
  for (const auto& c : placement) {
    rows.insert(c.row);
    cols.insert(c.col);
    EXPECT_LT(c.row, k);
    EXPECT_LT(c.col, k);
  }
  EXPECT_EQ(rows.size(), k);
  EXPECT_EQ(cols.size(), k);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NQueenSizes,
                         ::testing::Values(1u, 4u, 5u, 8u, 16u, 32u));

TEST(NQueen, SmallSizesFallBackToDistinctRowsCols) {
  for (std::uint32_t k : {2u, 3u}) {
    const auto placement = identify_s_pes(k);
    ASSERT_EQ(placement.size(), k);
    std::set<std::uint32_t> rows, cols;
    for (const auto& c : placement) {
      rows.insert(c.row);
      cols.insert(c.col);
    }
    EXPECT_EQ(rows.size(), k);
    EXPECT_EQ(cols.size(), k);
  }
}

TEST(NQueen, ValidatorCatchesAttacks) {
  EXPECT_FALSE(is_valid_queen_placement({{0, 0}, {0, 3}}));  // same row
  EXPECT_FALSE(is_valid_queen_placement({{0, 1}, {4, 1}}));  // same col
  EXPECT_FALSE(is_valid_queen_placement({{0, 0}, {2, 2}}));  // diagonal
  EXPECT_TRUE(is_valid_queen_placement({{0, 1}, {1, 3}}));
}

MapperParams small_params() {
  MapperParams p = MapperParams::square(4);
  p.c_pe_slots = 2;
  p.pe_vertex_slots = 64;
  return p;
}

TEST(DegreeAwareMap, HighDegreeVerticesLandOnSPEs) {
  const auto g = generate_star(100);  // vertex 0 is the hub
  const auto params = small_params();
  const Mapping m = degree_aware_map(g, 0, g.num_vertices(), params);

  ASSERT_FALSE(m.high_degree_vertices.empty());
  EXPECT_EQ(m.high_degree_vertices.front(), 0u);  // hub ranked first
  std::set<noc::NodeId> s_pe_nodes;
  for (const auto& c : m.s_pes) {
    s_pe_nodes.insert(noc::to_node(c, params.region.mesh_k));
  }
  for (VertexId hv : m.high_degree_vertices) {
    EXPECT_TRUE(s_pe_nodes.count(m.vertex_to_pe[hv]) > 0)
        << "high-degree vertex " << hv << " not on an S_PE";
  }
}

TEST(DegreeAwareMap, HighDegreeCountFollowsCapacity) {
  Rng rng(3);
  graph::PowerLawParams gp;
  gp.n = 300;
  gp.undirected_edges = 1200;
  const auto g = generate_power_law(gp, rng);
  const auto params = small_params();  // 4 S_PEs x 2 slots = 8
  const Mapping m = degree_aware_map(g, 0, g.num_vertices(), params);
  EXPECT_EQ(m.high_degree_vertices.size(), 8u);
  // They really are the top-degree vertices.
  const auto by_degree = graph::vertices_by_degree(g, 8);
  const std::set<VertexId> expect(by_degree.begin(), by_degree.end());
  for (VertexId hv : m.high_degree_vertices) {
    EXPECT_TRUE(expect.count(hv) > 0);
  }
}

TEST(DegreeAwareMap, SPEsAreSpreadByRoundRobin) {
  const auto g = generate_star(200);
  MapperParams params = small_params();
  const Mapping m = degree_aware_map(g, 0, g.num_vertices(), params);
  // 8 high-degree vertices over 4 S_PEs -> every S_PE hosts exactly 2.
  std::map<noc::NodeId, int> count;
  for (VertexId hv : m.high_degree_vertices) ++count[m.vertex_to_pe[hv]];
  EXPECT_EQ(count.size(), 4u);
  for (const auto& [pe, c] : count) {
    (void)pe;
    EXPECT_EQ(c, 2);
  }
}

TEST(DegreeAwareMap, AllVerticesAssignedWithinSlots) {
  Rng rng(7);
  graph::PowerLawParams gp;
  gp.n = 500;
  gp.undirected_edges = 2000;
  const auto g = generate_power_law(gp, rng);
  MapperParams params = MapperParams::square(4);
  params.c_pe_slots = 4;
  params.pe_vertex_slots = 40;
  const Mapping m = degree_aware_map(g, 0, g.num_vertices(), params);
  ASSERT_EQ(m.vertex_to_pe.size(), 500u);
  std::map<noc::NodeId, std::uint32_t> load;
  for (auto pe : m.vertex_to_pe) {
    EXPECT_LT(pe, 16u);
    ++load[pe];
  }
  for (const auto& [pe, l] : load) {
    (void)pe;
    EXPECT_LE(l, params.pe_vertex_slots + params.c_pe_slots);
  }
}

TEST(DegreeAwareMap, SubgraphRangeUsesLocalIndices) {
  const auto g = generate_star(64);
  MapperParams params = small_params();
  const Mapping m = degree_aware_map(g, 32, 64, params);
  EXPECT_EQ(m.vertex_to_pe.size(), 32u);
  // Local ids must stay within the range size.
  for (VertexId hv : m.high_degree_vertices) EXPECT_LT(hv, 32u);
}

TEST(DegreeAwareMap, RejectsOversizedSubgraph) {
  const auto g = generate_star(2000);
  MapperParams params = MapperParams::square(2);
  params.c_pe_slots = 1;
  params.pe_vertex_slots = 8;  // capacity 32 < 2000
  EXPECT_THROW(degree_aware_map(g, 0, g.num_vertices(), params), Error);
}

TEST(HashingMap, RoundRobinAssignment) {
  const auto g = generate_star(40);
  MapperParams params = small_params();
  const Mapping m = hashing_map(g, 0, 40, params);
  for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(m.vertex_to_pe[v], v % 16);
  EXPECT_TRUE(m.s_pes.empty());
}

TEST(BypassConfig, OneSegmentPerSpeRowAndColumn) {
  const auto g = generate_star(100);
  MapperParams params = MapperParams::square(8);
  params.c_pe_slots = 2;
  const Mapping m = degree_aware_map(g, 0, g.num_vertices(), params);
  const noc::NocConfig cfg = make_bypass_config(m);
  EXPECT_EQ(cfg.row_segments().size(), 8u);
  EXPECT_EQ(cfg.col_segments().size(), 8u);
  for (const auto& s : cfg.row_segments()) {
    EXPECT_EQ(s.from, 0u);
    EXPECT_EQ(s.to, 7u);
  }
}

// ------------------------------------------------------------ quality model

TEST(MappingQuality, DegreeAwareBeatsHashingOnSkewedGraphs) {
  Rng rng(11);
  graph::PowerLawParams gp;
  gp.n = 600;
  gp.undirected_edges = 3000;
  gp.alpha = 2.0;
  const auto g = generate_power_law(gp, rng);

  MapperParams params = MapperParams::square(8);
  params.c_pe_slots = 2;
  params.pe_vertex_slots = 16;

  const Mapping aware = degree_aware_map(g, 0, g.num_vertices(), params);
  const Mapping hashed = hashing_map(g, 0, g.num_vertices(), params);

  const auto q_aware = evaluate_mapping(g, 0, g.num_vertices(), aware,
                                        make_bypass_config(aware));
  const auto q_hash =
      evaluate_mapping(g, 0, g.num_vertices(), hashed, noc::NocConfig(8));

  // The bypass links cut the average hop count...
  EXPECT_LT(q_aware.avg_hops, q_hash.avg_hops);
  EXPECT_GT(q_aware.bypass_messages, 0u);
  // ...and the row-load imbalance cannot be worse than hashing's hotspots by
  // more than a smidge (high-degree rows are deliberately separated).
  EXPECT_LT(q_aware.row_load_imbalance(), q_hash.row_load_imbalance() * 1.5);
}

TEST(MappingQuality, LocalEdgesAreFree) {
  // All vertices on one PE: no cross-PE messages.
  const auto g = generate_star(16);
  Mapping all_local;
  all_local.region = PeRegion::full(2);
  all_local.vertex_to_pe.assign(16, 0);
  const auto q =
      evaluate_mapping(g, 0, 16, all_local, noc::NocConfig(2));
  EXPECT_EQ(q.cross_pe_messages, 0u);
  EXPECT_EQ(q.local_edges, g.num_edges());
  EXPECT_EQ(q.total_hops, 0u);
}

TEST(MappingQuality, DeterministicMapping) {
  Rng rng(13);
  graph::PowerLawParams gp;
  gp.n = 200;
  gp.undirected_edges = 800;
  const auto g = generate_power_law(gp, rng);
  const auto params = small_params();
  const Mapping a = degree_aware_map(g, 0, g.num_vertices(), params);
  const Mapping b = degree_aware_map(g, 0, g.num_vertices(), params);
  EXPECT_EQ(a.vertex_to_pe, b.vertex_to_pe);
  EXPECT_EQ(a.high_degree_vertices, b.high_degree_vertices);
}

}  // namespace
}  // namespace aurora::mapping
