// Tests for INI parsing and the AuroraConfig file bridge.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/ini.hpp"
#include "core/aurora.hpp"
#include "core/config_io.hpp"

namespace aurora {
namespace {

TEST(Ini, ParsesSectionsKeysComments) {
  std::istringstream in(
      "; top comment\n"
      "[chip]\n"
      "array_dim = 32      ; inline comment\n"
      "mode = analytic\n"
      "\n"
      "[dram]\n"
      "channels = 8\n"
      "# another comment\n");
  const IniFile ini = IniFile::parse(in);
  EXPECT_EQ(ini.num_sections(), 2u);
  EXPECT_TRUE(ini.has("chip", "array_dim"));
  EXPECT_EQ(ini.get_int("chip", "array_dim", 0), 32);
  EXPECT_EQ(ini.get_string("chip", "mode", ""), "analytic");
  EXPECT_EQ(ini.get_int("dram", "channels", 0), 8);
  EXPECT_EQ(ini.get_int("dram", "missing", 42), 42);
  EXPECT_FALSE(ini.has("nope", "x"));
}

TEST(Ini, TypedGetters) {
  std::istringstream in(
      "[s]\n"
      "f = 0.25\n"
      "yes1 = true\n"
      "yes2 = on\n"
      "no = off\n");
  const IniFile ini = IniFile::parse(in);
  EXPECT_DOUBLE_EQ(ini.get_double("s", "f", 0.0), 0.25);
  EXPECT_TRUE(ini.get_bool("s", "yes1", false));
  EXPECT_TRUE(ini.get_bool("s", "yes2", false));
  EXPECT_FALSE(ini.get_bool("s", "no", true));
  EXPECT_TRUE(ini.get_bool("s", "missing", true));
}

TEST(Ini, RejectsMalformedLines) {
  std::istringstream no_eq("[a]\njust a dangling token\n");
  EXPECT_THROW((void)IniFile::parse(no_eq), Error);
  std::istringstream bad_section("[unterminated\n");
  EXPECT_THROW((void)IniFile::parse(bad_section), Error);
  std::istringstream empty_key("[a]\n= 3\n");
  EXPECT_THROW((void)IniFile::parse(empty_key), Error);
}

TEST(ConfigIo, AppliesOverridesOnTopOfBase) {
  std::istringstream in(
      "[chip]\n"
      "array_dim = 8\n"
      "mode = analytic\n"
      "mapping = hashing\n"
      "[pe]\n"
      "bank_buffer_kib = 64\n"
      "[noc]\n"
      "num_vcs = 4\n"
      "[dram]\n"
      "channels = 2\n"
      "t_refi = 0\n");
  const auto cfg =
      core::config_from_ini(IniFile::parse(in), core::AuroraConfig::bench());
  EXPECT_EQ(cfg.array_dim, 8u);
  EXPECT_EQ(cfg.noc.k, 8u);  // mesh follows array_dim
  EXPECT_EQ(cfg.mode, core::SimMode::kAnalytic);
  EXPECT_EQ(cfg.mapping_policy, core::MappingPolicy::kHashing);
  EXPECT_EQ(cfg.pe.bank_buffer_bytes, 64u * 1024);
  EXPECT_EQ(cfg.noc.num_vcs, 4u);
  EXPECT_EQ(cfg.dram.num_channels, 2u);
  EXPECT_EQ(cfg.dram.timing.t_refi, 0u);
  // Untouched keys keep their base defaults.
  EXPECT_EQ(cfg.ring_size, core::AuroraConfig::bench().ring_size);
}

TEST(ConfigIo, RoundTripsThroughIni) {
  core::AuroraConfig original = core::AuroraConfig::paper();
  original.ring_size = 4;
  original.noc.num_vcs = 3;
  original.dram.timing.t_cl = 13;
  std::istringstream in(core::config_to_ini(original));
  const auto back = core::config_from_ini(IniFile::parse(in));
  EXPECT_EQ(back.array_dim, original.array_dim);
  EXPECT_EQ(back.ring_size, original.ring_size);
  EXPECT_EQ(back.noc.num_vcs, original.noc.num_vcs);
  EXPECT_EQ(back.dram.timing.t_cl, original.dram.timing.t_cl);
  EXPECT_EQ(back.mode, original.mode);
  EXPECT_EQ(back.pe.bank_buffer_bytes, original.pe.bank_buffer_bytes);
}

TEST(ConfigIo, RejectsBadMode) {
  std::istringstream in("[chip]\nmode = warp\n");
  EXPECT_THROW((void)core::config_from_ini(IniFile::parse(in)), Error);
}

TEST(ConfigIo, LoadedConfigDrivesAccelerator) {
  std::istringstream in(
      "[chip]\n"
      "array_dim = 8\n"
      "mode = analytic\n");
  const auto cfg = core::config_from_ini(IniFile::parse(in));
  core::AuroraAccelerator accel(cfg);
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.05);
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn, {16, 8}, 1);
  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_EQ(m.partition_a + m.partition_b, 64u);
}

}  // namespace
}  // namespace aurora
