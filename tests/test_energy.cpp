// Tests for energy accounting and the parametric area model.
#include <gtest/gtest.h>

#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"

namespace aurora::energy {
namespace {

TEST(Energy, ZeroEventsZeroEnergy) {
  EXPECT_DOUBLE_EQ(compute_energy(EnergyEvents{}, EnergyTable{}).total_pj(),
                   0.0);
}

TEST(Energy, ComputeEnergyIsLinearInEvents) {
  EnergyTable t;
  EnergyEvents e;
  e.fp_multiplies = 10;
  e.fp_adds = 20;
  const double single = compute_energy(e, t).compute_pj;
  EnergyEvents e2 = e;
  e2 += e;
  EXPECT_DOUBLE_EQ(compute_energy(e2, t).compute_pj, 2.0 * single);
}

TEST(Energy, BreakdownMatchesTableEntries) {
  EnergyTable t;
  EnergyEvents e;
  e.fp_multiplies = 3;
  e.fp_adds = 5;
  e.dram_bytes = 7;
  e.noc_link_bytes = 11;
  e.router_bytes = 13;
  e.bypass_link_bytes = 17;
  e.sram_large_bytes = 19;
  e.reconfig_switch_writes = 2;
  e.active_cycles = 23;
  const EnergyBreakdown b = compute_energy(e, t);
  EXPECT_DOUBLE_EQ(b.compute_pj, 3 * t.fp_mul_pj + 5 * t.fp_add_pj);
  EXPECT_DOUBLE_EQ(b.dram_pj, 7 * t.dram_pj_per_byte);
  EXPECT_DOUBLE_EQ(b.noc_pj, 11 * t.noc_link_pj_per_byte +
                                 13 * t.router_pj_per_byte +
                                 17 * t.bypass_link_pj_per_byte);
  EXPECT_DOUBLE_EQ(b.sram_pj, 19 * t.sram_large_pj_per_byte);
  EXPECT_DOUBLE_EQ(b.reconfig_pj, 2 * t.reconfig_pj_per_switch);
  EXPECT_DOUBLE_EQ(b.leakage_pj, 23 * t.leakage_pj_per_cycle);
  EXPECT_DOUBLE_EQ(b.total_pj(), b.compute_pj + b.sram_pj + b.dram_pj +
                                     b.noc_pj + b.reconfig_pj + b.leakage_pj);
}

TEST(Energy, EventAccumulationSums) {
  EnergyEvents a, b;
  a.dram_bytes = 100;
  a.active_cycles = 5;
  b.dram_bytes = 50;
  b.fp_adds = 7;
  a += b;
  EXPECT_EQ(a.dram_bytes, 150u);
  EXPECT_EQ(a.fp_adds, 7u);
  EXPECT_EQ(a.active_cycles, 5u);
}

TEST(Energy, BreakdownAccumulationSums) {
  EnergyBreakdown a, b;
  a.dram_pj = 1.0;
  b.dram_pj = 2.0;
  b.noc_pj = 3.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.dram_pj, 3.0);
  EXPECT_DOUBLE_EQ(a.total_pj(), 6.0);
}

// ---- area model: reproduce the paper's Sec VI-F ratios --------------------

TEST(Area, PaperPeBreakdown) {
  const AreaReport r = compute_area(AreaParams{});
  ASSERT_EQ(r.pe_components.size(), 4u);
  // MAC array 7.1 %, memory 82.9 %, control + switches 3.7 % (Sec VI-F).
  EXPECT_NEAR(r.pe_components[0].fraction_of_parent, 0.071, 0.003);
  EXPECT_NEAR(r.pe_components[1].fraction_of_parent, 0.829, 0.003);
  EXPECT_NEAR(r.pe_components[2].fraction_of_parent, 0.037, 0.003);
}

TEST(Area, PaperChipBreakdown) {
  const AreaReport r = compute_area(AreaParams{});
  ASSERT_EQ(r.chip_components.size(), 4u);
  // PE array 62.74 %, flexible interconnect 5.2 %, controller 0.9 %.
  EXPECT_NEAR(r.chip_components[0].fraction_of_parent, 0.6274, 0.005);
  EXPECT_NEAR(r.chip_components[1].fraction_of_parent, 0.052, 0.003);
  EXPECT_NEAR(r.chip_components[2].fraction_of_parent, 0.009, 0.002);
}

TEST(Area, FractionsSumToOne) {
  const AreaReport r = compute_area(AreaParams{});
  double pe = 0.0, chip = 0.0;
  for (const auto& c : r.pe_components) pe += c.fraction_of_parent;
  for (const auto& c : r.chip_components) chip += c.fraction_of_parent;
  EXPECT_NEAR(pe, 1.0, 1e-12);
  EXPECT_NEAR(chip, 1.0, 1e-12);
}

TEST(Area, ScalesWithArrayDim) {
  AreaParams small, big;
  small.array_dim = 8;
  big.array_dim = 16;
  const double a8 = compute_area(small).chip_total_mm2;
  const double a16 = compute_area(big).chip_total_mm2;
  // PE count grows 4x; linear blocks (crossbar, bypass) grow 2x, the
  // controller not at all — total lands strictly between.
  EXPECT_GT(a16, 2.0 * a8);
  EXPECT_LT(a16, 4.0 * a8);
}

TEST(Area, MoreBufferMeansMoreMemoryFraction) {
  AreaParams lean, fat;
  lean.pe_buffer_kib = 25;
  fat.pe_buffer_kib = 200;
  EXPECT_LT(compute_area(lean).pe_components[1].fraction_of_parent,
            compute_area(fat).pe_components[1].fraction_of_parent);
}

}  // namespace
}  // namespace aurora::energy
