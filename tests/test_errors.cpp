// Error-path coverage: every module's preconditions reject bad inputs with
// AURORA_CHECK rather than corrupting state or crashing later.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/functional_engine.hpp"
#include "core/scheduler.hpp"
#include "graph/generators.hpp"
#include "noc/network.hpp"
#include "pe/pe.hpp"
#include "sim/simulator.hpp"

namespace aurora {
namespace {

TEST(Errors, RngRejectsDegenerateArguments) {
  Rng rng(1);
  EXPECT_THROW((void)rng.next_below(0), Error);
  EXPECT_THROW((void)rng.next_range(5, 4), Error);
  EXPECT_THROW((void)rng.next_power_law(1.0, 10), Error);
  EXPECT_THROW((void)rng.next_weighted({}), Error);
  EXPECT_THROW((void)rng.next_weighted({-1.0}), Error);
  EXPECT_THROW((void)rng.next_weighted({0.0, 0.0}), Error);
}

TEST(Errors, GeneratorsRejectBadShapes) {
  Rng rng(1);
  EXPECT_THROW((void)graph::generate_erdos_renyi(1, 1, rng), Error);
  EXPECT_THROW((void)graph::generate_erdos_renyi(4, 100, rng), Error);
  EXPECT_THROW((void)graph::generate_star(1), Error);
  EXPECT_THROW((void)graph::generate_ring(2), Error);
  graph::PowerLawParams p;
  p.n = 1;
  p.undirected_edges = 1;
  EXPECT_THROW((void)graph::generate_power_law(p, rng), Error);
  graph::RmatParams r;
  r.scale = 1;  // below minimum
  r.undirected_edges = 4;
  EXPECT_THROW((void)graph::generate_rmat(r, rng), Error);
}

TEST(Errors, NetworkRejectsOutOfRangeEndpoints) {
  noc::NocParams p;
  p.k = 4;
  noc::Network net(p);
  EXPECT_THROW((void)net.send(0, 16, 64, 0, 0), Error);
  EXPECT_THROW((void)net.send(99, 0, 64, 0, 0), Error);
}

TEST(Errors, NetworkRejectsMismatchedConfig) {
  noc::NocParams p;
  p.k = 4;
  noc::Network net(p);
  noc::NocConfig wrong_size(8);
  EXPECT_THROW((void)net.configure(wrong_size), Error);
}

TEST(Errors, AcceleratorRejectsInconsistentMeshSize) {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.noc.k = cfg.array_dim + 1;
  EXPECT_THROW(core::AuroraAccelerator accel(cfg), Error);
}

TEST(Errors, AcceleratorRejectsEmptyJob) {
  core::AuroraAccelerator accel(core::AuroraConfig::bench());
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.03);
  core::GnnJob empty;
  empty.model = gnn::GnnModel::kGcn;
  EXPECT_THROW((void)accel.run(ds, empty), Error);
}

TEST(Errors, SchedulerRejectsEmptyQueue) {
  core::AuroraAccelerator accel(core::AuroraConfig::bench());
  core::Scheduler sched(accel);
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.03);
  EXPECT_THROW((void)sched.run(ds, {}), Error);
}

TEST(Errors, FunctionalEngineRejectsShapeMismatch) {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 8;
  cfg.noc.k = 8;
  core::FunctionalEngine engine(cfg);
  Rng rng(2);
  graph::Dataset ds;
  ds.graph = graph::generate_ring(10);
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  gnn::Matrix wrong_rows(5, 4);  // graph has 10 vertices
  const auto params =
      gnn::make_reference_params(gnn::GnnModel::kGcn, 4, 2, rng);
  EXPECT_THROW(
      (void)engine.run_layer(ds, gnn::GnnModel::kGcn, wrong_rows, params),
      Error);
}

TEST(Errors, PeRejectsZeroLengthArithmeticTask) {
  pe::PeModel pe("pe", pe::PeModelParams{});
  pe::PeTask task;
  task.op.kind = pe::PeConfigKind::kMatVec;
  task.op.length = 0;
  EXPECT_THROW(pe.submit(task), Error);
}

TEST(Errors, WorkflowRejectsZeroDims) {
  EXPECT_THROW(
      (void)gnn::generate_workflow(gnn::GnnModel::kGcn, {0, 4}, 10, 20),
      Error);
  EXPECT_THROW(
      (void)gnn::generate_workflow(gnn::GnnModel::kGcn, {4, 0}, 10, 20),
      Error);
  EXPECT_THROW(
      (void)gnn::generate_workflow(gnn::GnnModel::kGcn, {4, 4}, 0, 20),
      Error);
}

TEST(Errors, TensorShapeChecks) {
  gnn::Matrix m(2, 3);
  EXPECT_THROW((void)m.at(2, 0), Error);
  EXPECT_THROW((void)m.at(0, 3), Error);
  EXPECT_THROW((void)gnn::mat_vec(m, gnn::Vector{1.0}), Error);
  EXPECT_THROW((void)gnn::dot(gnn::Vector{1.0}, gnn::Vector{1.0, 2.0}),
               Error);
  EXPECT_THROW((void)gnn::softmax(gnn::Vector{}), Error);
}

}  // namespace
}  // namespace aurora
