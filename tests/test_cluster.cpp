// Tests for the multi-chip scale-out subsystem: the shard planner's cut and
// ghost bookkeeping, the inter-chip link's cycle-level behaviour and
// conservation laws, the cluster engine's single-chip equivalence and
// multi-chip halo exchange, and the cluster-level serving scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "cluster/cluster_scheduler.hpp"
#include "cluster/interchip.hpp"
#include "cluster/shard.hpp"
#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "sim/invariants.hpp"
#include "sim/perfetto.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace aurora {
namespace {

graph::Dataset make_test_dataset(VertexId n, EdgeId undirected_edges,
                                 std::uint64_t seed) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec.name = "cluster-test";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_erdos_renyi(n, undirected_edges, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.spec.num_directed_edges = ds.graph.num_edges();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

core::AuroraConfig small_config() {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  return cfg;
}

// ------------------------------------------------------------------ shard

TEST(ShardPlanner, OneChipPlanIsIdentity) {
  const graph::Dataset ds = make_test_dataset(40, 90, 3);
  for (const auto strategy :
       {cluster::ShardStrategy::kRange, cluster::ShardStrategy::kHash}) {
    const cluster::ShardPlan plan = make_shard_plan(ds, 1, strategy);
    ASSERT_EQ(plan.shards.size(), 1u);
    const cluster::Shard& shard = plan.shards[0];
    EXPECT_EQ(shard.num_owned, ds.num_vertices());
    EXPECT_EQ(shard.num_ghosts, 0u);
    EXPECT_EQ(plan.cut_edges, 0u);
    EXPECT_DOUBLE_EQ(plan.replication_factor, 1.0);
    // Bit-identical CSR vectors — the property the 1-chip engine
    // equivalence rests on.
    EXPECT_EQ(shard.dataset.graph.row_ptr(), ds.graph.row_ptr());
    EXPECT_EQ(shard.dataset.graph.col_idx(), ds.graph.col_idx());
  }
}

TEST(ShardPlanner, ShardsPartitionVerticesAndConserveEdges) {
  const graph::Dataset ds = make_test_dataset(60, 150, 5);
  for (const auto strategy :
       {cluster::ShardStrategy::kRange, cluster::ShardStrategy::kHash}) {
    for (const std::uint32_t chips : {2u, 3u, 4u}) {
      const cluster::ShardPlan plan = make_shard_plan(ds, chips, strategy);
      ASSERT_EQ(plan.shards.size(), chips);
      VertexId owned_total = 0;
      EdgeId owned_edges_total = 0;
      EdgeId ghost_edges_total = 0;
      VertexId ghosts_total = 0;
      std::vector<bool> seen(ds.num_vertices(), false);
      for (const cluster::Shard& shard : plan.shards) {
        owned_total += shard.num_owned;
        ghosts_total += shard.num_ghosts;
        ASSERT_EQ(shard.global_ids.size(),
                  static_cast<std::size_t>(shard.num_owned) +
                      shard.num_ghosts);
        for (VertexId local = 0; local < shard.num_owned; ++local) {
          const VertexId global = shard.global_ids[local];
          EXPECT_FALSE(seen[global]) << "vertex owned twice";
          seen[global] = true;
          // Every owned vertex keeps its full neighbor list locally.
          EXPECT_EQ(shard.dataset.graph.degree(local), ds.graph.degree(global));
          owned_edges_total += shard.dataset.graph.degree(local);
        }
        // Ghost rows mirror exactly the cut edges back into the owned side
        // (the shard is a symmetric CSR).
        EdgeId ghost_edges = 0;
        for (VertexId local = shard.num_owned;
             local < shard.global_ids.size(); ++local) {
          EXPECT_GT(shard.dataset.graph.degree(local), 0u);
          ghost_edges += shard.dataset.graph.degree(local);
          for (const VertexId nb : shard.dataset.graph.neighbors(local)) {
            EXPECT_LT(nb, shard.num_owned);
          }
        }
        EXPECT_EQ(ghost_edges, shard.cut_edges);
        ghost_edges_total += ghost_edges;
        VertexId ghosts_from_total = 0;
        for (const VertexId g : shard.ghosts_from) ghosts_from_total += g;
        EXPECT_EQ(ghosts_from_total, shard.num_ghosts);
        EXPECT_EQ(shard.ghosts_from[shard.chip], 0u);
      }
      EXPECT_EQ(owned_total, ds.num_vertices());
      EXPECT_EQ(owned_edges_total, ds.num_edges());
      EXPECT_EQ(ghost_edges_total, plan.cut_edges);
      EXPECT_EQ(ghosts_total, plan.total_ghosts);
      EXPECT_GE(plan.replication_factor, 1.0);
      EXPECT_GT(plan.cut_edges, 0u);  // an ER graph always cuts somewhere
    }
  }
}

TEST(ShardPlanner, HashOwnerIsVertexModChips) {
  const graph::Dataset ds = make_test_dataset(30, 60, 7);
  const cluster::ShardPlan plan =
      make_shard_plan(ds, 3, cluster::ShardStrategy::kHash);
  for (const cluster::Shard& shard : plan.shards) {
    for (VertexId local = 0; local < shard.num_owned; ++local) {
      EXPECT_EQ(shard.global_ids[local] % 3, shard.chip);
    }
  }
}

TEST(ShardPlanner, HaloBytesFollowGhostCounts) {
  const graph::Dataset ds = make_test_dataset(50, 120, 9);
  const cluster::ShardPlan plan =
      make_shard_plan(ds, 2, cluster::ShardStrategy::kRange);
  EXPECT_EQ(plan.halo_bytes(0, 1, 4, 8),
            static_cast<Bytes>(plan.shards[1].ghosts_from[0]) * 4 * 8);
  EXPECT_EQ(plan.halo_bytes(1, 0, 4, 8),
            static_cast<Bytes>(plan.shards[0].ghosts_from[1]) * 4 * 8);
}

// ------------------------------------------------------------------- link

struct Delivery {
  cluster::LinkMessage msg;
  Cycle at = 0;
};

std::vector<Delivery> drive_link(cluster::InterChipLink& link,
                                 bool fast_forward, Cycle max_cycles = 4096) {
  std::vector<Delivery> deliveries;
  link.set_delivery_callback(
      [&](const cluster::LinkMessage& msg, Cycle now) {
        deliveries.push_back({msg, now});
      });
  sim::Simulator simulator;
  simulator.set_fast_forward(fast_forward);
  simulator.add(&link);
  simulator.run_until_idle(max_cycles);
  return deliveries;
}

TEST(InterChipLink, SerializationAndFlightTiming) {
  cluster::LinkParams params;
  params.bytes_per_cycle = 32;
  params.hop_latency = 10;
  cluster::InterChipLink link(2, params);
  cluster::LinkMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 64;
  link.send(msg, 0);
  const auto deliveries = drive_link(link, /*fast_forward=*/true);
  ASSERT_EQ(deliveries.size(), 1u);
  // Eligible at 1, serialises 64/32 = 2 cycles, flies 10: arrives at 13.
  EXPECT_EQ(deliveries[0].at, 13u);
  EXPECT_EQ(link.stats().messages_delivered, 1u);
  EXPECT_EQ(link.stats().bytes_delivered, 64u);
  EXPECT_EQ(link.stats().hops, 1u);
  EXPECT_EQ(link.stats().stall_cycles, 0u);
}

TEST(InterChipLink, RingRoutesShortestPathStoreAndForward) {
  cluster::LinkParams params;
  params.topology = cluster::ClusterTopology::kRing;
  cluster::InterChipLink ring(4, params);
  EXPECT_EQ(ring.route_hops(0, 2), 2u);
  EXPECT_EQ(ring.route_hops(0, 3), 1u);
  EXPECT_EQ(ring.route_hops(3, 1), 2u);
  cluster::LinkMessage msg;
  msg.src = 0;
  msg.dst = 2;
  msg.bytes = 16;
  ring.send(msg, 0);
  const auto deliveries = drive_link(ring, true);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(ring.stats().hops, 2u);  // forwarded once through chip 1
  EXPECT_EQ(ring.stats().bytes_hopped, 32u);

  params.topology = cluster::ClusterTopology::kFullyConnected;
  cluster::InterChipLink full(4, params);
  EXPECT_EQ(full.route_hops(0, 2), 1u);
  EXPECT_EQ(full.num_wires(), 12u);  // N(N-1) directed wires
  full.send(msg, 0);
  (void)drive_link(full, true);
  EXPECT_EQ(full.stats().hops, 1u);
}

TEST(InterChipLink, QueueingBehindBusyWireCountsStalls) {
  cluster::LinkParams params;
  params.bytes_per_cycle = 8;
  params.hop_latency = 5;
  cluster::InterChipLink link(2, params);
  cluster::LinkMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 80;  // 10 serialisation cycles
  link.send(msg, 0);
  link.send(msg, 0);  // same wire: waits for the first to serialise
  const auto deliveries = drive_link(link, true);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(link.stats().stall_cycles, 10u);
  EXPECT_EQ(link.stats().serialize_cycles, 20u);
}

TEST(InterChipLink, LockstepAndFastForwardBitIdentical) {
  for (const auto topology : {cluster::ClusterTopology::kRing,
                              cluster::ClusterTopology::kFullyConnected}) {
    cluster::LinkParams params;
    params.topology = topology;
    params.bytes_per_cycle = 16;
    params.hop_latency = 33;
    const auto run = [&](bool fast_forward) {
      cluster::InterChipLink link(5, params);
      Rng rng(42);
      Cycle now = 0;
      sim::Simulator simulator;
      simulator.set_fast_forward(fast_forward);
      simulator.add(&link);
      std::vector<Delivery> deliveries;
      link.set_delivery_callback(
          [&](const cluster::LinkMessage& msg, Cycle at) {
            deliveries.push_back({msg, at});
          });
      for (int i = 0; i < 20; ++i) {
        cluster::LinkMessage msg;
        msg.src = static_cast<std::uint32_t>(rng.next_below(5));
        do {
          msg.dst = static_cast<std::uint32_t>(rng.next_below(5));
        } while (msg.dst == msg.src);
        msg.bytes = 1 + rng.next_below(256);
        link.send(msg, now);
        // Interleave sends with simulation progress.
        const Cycle until = now + rng.next_below(41);
        while (simulator.now() < until && !simulator.all_idle()) {
          simulator.step();
        }
        now = simulator.now();
      }
      simulator.run_until_idle(100000);
      sim::InvariantReport report(simulator.now(), /*drained=*/true);
      report.set_subject(link.name());
      link.verify_invariants(report);
      EXPECT_TRUE(report.ok()) << report.to_string();
      return std::make_pair(deliveries, link.stats());
    };
    const auto [d_lock, s_lock] = run(false);
    const auto [d_fast, s_fast] = run(true);
    ASSERT_EQ(d_lock.size(), d_fast.size());
    for (std::size_t i = 0; i < d_lock.size(); ++i) {
      EXPECT_EQ(d_lock[i].at, d_fast[i].at) << "delivery " << i;
      EXPECT_EQ(d_lock[i].msg.bytes, d_fast[i].msg.bytes);
    }
    EXPECT_EQ(s_lock.messages_delivered, s_fast.messages_delivered);
    EXPECT_EQ(s_lock.stall_cycles, s_fast.stall_cycles);
    EXPECT_EQ(s_lock.serialize_cycles, s_fast.serialize_cycles);
    EXPECT_EQ(s_lock.hops, s_fast.hops);
  }
}

TEST(InterChipLink, ConservationInvariantsHoldMidFlight) {
  cluster::LinkParams params;
  params.hop_latency = 50;
  cluster::InterChipLink link(3, params);
  cluster::LinkMessage msg;
  msg.src = 0;
  msg.dst = 2;
  msg.bytes = 100;
  link.send(msg, 0);
  sim::Simulator simulator;
  simulator.add(&link);
  simulator.run_cycles(10);  // message is mid-flight
  EXPECT_GT(link.messages_in_flight(), 0u);
  sim::InvariantReport mid(simulator.now(), /*drained=*/false);
  link.verify_invariants(mid);
  EXPECT_TRUE(mid.ok()) << mid.to_string();
  simulator.run_until_idle(10000);
  sim::InvariantReport drained(simulator.now(), /*drained=*/true);
  link.verify_invariants(drained);
  EXPECT_TRUE(drained.ok()) << drained.to_string();
}

// ----------------------------------------------------------------- engine

TEST(ClusterEngine, OneChipReproducesPlainEngineBitForBit) {
  const graph::Dataset ds = make_test_dataset(48, 100, 11);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  for (const bool fast_forward : {false, true}) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;

    core::AuroraAccelerator plain(cfg);
    const core::RunMetrics reference = plain.run(ds, job);

    cluster::ClusterParams params;
    params.num_chips = 1;
    cluster::ClusterEngine engine(cfg, params);
    const cluster::ClusterRunMetrics clustered = engine.run(ds, job);

    ASSERT_EQ(clustered.chips.size(), 1u);
    const auto diffs =
        core::diff_run_metrics(reference, clustered.chips[0].metrics);
    EXPECT_TRUE(diffs.empty())
        << "fast_forward=" << fast_forward << ": " << diffs.size()
        << " field(s) diverge; first: "
        << (diffs.empty() ? std::string() : diffs.front());
    EXPECT_EQ(clustered.total_cycles, reference.total_cycles);
    EXPECT_EQ(clustered.link.messages_sent, 0u);
    EXPECT_EQ(clustered.chips[0].halo_bytes_sent, 0u);
    EXPECT_EQ(clustered.ghost_vertices, 0u);
  }
}

TEST(ClusterEngine, TwoChipShardParallelExchangesHalos) {
  const graph::Dataset ds = make_test_dataset(60, 140, 17);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  core::AuroraConfig cfg = small_config();
  cfg.check_invariants = true;  // cluster conservation laws on the hot path
  cfg.invariant_interval = 64;
  cluster::ClusterParams params;
  params.num_chips = 2;
  cluster::ClusterEngine engine(cfg, params);
  const cluster::ClusterRunMetrics out = engine.run(ds, job);

  ASSERT_EQ(out.chips.size(), 2u);
  EXPECT_GT(out.ghost_vertices, 0u);
  EXPECT_GT(out.cut_edges, 0u);
  EXPECT_GT(out.replication_factor, 1.0);
  EXPECT_GT(out.link.messages_sent, 0u);
  EXPECT_EQ(out.link.messages_sent, out.link.messages_delivered);
  EXPECT_EQ(out.link.bytes_sent, out.link.bytes_delivered);
  EXPECT_GT(out.counters.get("cluster.halo_bytes_sent"), 0u);
  Bytes sent = 0;
  Bytes received = 0;
  for (const cluster::ChipRun& chip : out.chips) {
    EXPECT_GT(chip.metrics.total_cycles, 0u);
    EXPECT_LE(chip.finish_cycle, out.total_cycles);
    sent += chip.halo_bytes_sent;
    received += chip.halo_bytes_received;
  }
  EXPECT_EQ(sent, out.link.bytes_sent);
  EXPECT_EQ(received, out.link.bytes_delivered);
  // The cluster clock covers at least the slowest chip's own work.
  Cycle slowest = 0;
  for (const cluster::ChipRun& chip : out.chips) {
    slowest = std::max(slowest, chip.metrics.total_cycles);
  }
  EXPECT_GE(out.total_cycles, slowest);
}

TEST(ClusterEngine, LockstepAndFastForwardClusterBitIdentical) {
  const graph::Dataset ds = make_test_dataset(50, 120, 23);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kAgnn, ds.spec, 8);
  const auto run = [&](bool fast_forward) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    cfg.check_invariants = true;
    cluster::ClusterParams params;
    params.num_chips = 3;
    params.strategy = cluster::ShardStrategy::kHash;
    cluster::ClusterEngine engine(cfg, params);
    return engine.run(ds, job);
  };
  const cluster::ClusterRunMetrics lockstep = run(false);
  const cluster::ClusterRunMetrics fastfwd = run(true);
  EXPECT_EQ(lockstep.total_cycles, fastfwd.total_cycles);
  ASSERT_EQ(lockstep.chips.size(), fastfwd.chips.size());
  for (std::size_t c = 0; c < lockstep.chips.size(); ++c) {
    const auto diffs = core::diff_run_metrics(lockstep.chips[c].metrics,
                                              fastfwd.chips[c].metrics);
    EXPECT_TRUE(diffs.empty())
        << "chip " << c << ": "
        << (diffs.empty() ? std::string() : diffs.front());
    EXPECT_EQ(lockstep.chips[c].finish_cycle, fastfwd.chips[c].finish_cycle);
    EXPECT_EQ(lockstep.chips[c].halo_wait_cycles,
              fastfwd.chips[c].halo_wait_cycles);
  }
  EXPECT_EQ(lockstep.link.stall_cycles, fastfwd.link.stall_cycles);
  EXPECT_EQ(lockstep.link.serialize_cycles, fastfwd.link.serialize_cycles);
  EXPECT_EQ(lockstep.counters.all(), fastfwd.counters.all());
}

TEST(ClusterEngine, RegistryExposesLinkAndPerChipProbes) {
  const graph::Dataset ds = make_test_dataset(40, 90, 29);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  cluster::ClusterParams params;
  params.num_chips = 2;
  cluster::ClusterEngine engine(small_config(), params);
  const cluster::ClusterRunMetrics out = engine.run(ds, job);

  MetricsRegistry registry;
  engine.register_metrics(registry);
  EXPECT_EQ(registry.value("cluster.link.bytes_sent"),
            static_cast<double>(out.link.bytes_sent));
  EXPECT_EQ(registry.value("cluster.chip0.halo_bytes_sent"),
            static_cast<double>(out.chips[0].halo_bytes_sent));
  EXPECT_EQ(registry.value("cluster.chip1.halo_bytes_received"),
            static_cast<double>(out.chips[1].halo_bytes_received));
  ASSERT_NE(registry.find("cluster.link.latency"), nullptr);
  EXPECT_FALSE(registry.match("cluster.").empty());
}

TEST(ClusterEngine, PerfettoTraceCarriesPerChipTracks) {
  const graph::Dataset ds = make_test_dataset(40, 90, 31);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  cluster::ClusterParams params;
  params.num_chips = 2;
  cluster::ClusterEngine engine(small_config(), params);
  sim::Tracer cluster_tracer;
  cluster_tracer.enable();
  sim::Tracer chip0_tracer;
  chip0_tracer.enable();
  engine.set_tracer(&cluster_tracer);
  engine.set_chip_tracer(0, &chip0_tracer);
  (void)engine.run(ds, job);

  EXPECT_GT(cluster_tracer.count(sim::TraceEvent::kClusterSegment), 0u);
  EXPECT_GT(cluster_tracer.count(sim::TraceEvent::kHaloSent), 0u);
  EXPECT_EQ(cluster_tracer.count(sim::TraceEvent::kHaloSent),
            cluster_tracer.count(sim::TraceEvent::kHaloDelivered));

  const std::string json = sim::perfetto_trace_json(
      {{"cluster", &cluster_tracer, nullptr}, {"chip0", &chip0_tracer}});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"chip0\""), std::string::npos);
  EXPECT_NE(json.find("\"chip1\""), std::string::npos);
  EXPECT_NE(json.find("compute-pre"), std::string::npos);
  EXPECT_NE(json.find("halo-wait"), std::string::npos);
  EXPECT_NE(json.find("link.halo_bytes_in_flight"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
}

// -------------------------------------------------- parallel engine

// The non-negotiable contract: the multi-threaded conservative engine must
// reproduce the serial engine's ClusterRunMetrics bit for bit — every chip's
// RunMetrics, halo fields, link stats including histogram buckets, and the
// counter set — across topologies, chip counts and both scheduler modes.
TEST(ParallelEngine, BitIdenticalToSerialAcrossTopologiesAndModes) {
  const graph::Dataset ds = make_test_dataset(60, 150, 41);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  for (const std::uint32_t chips : {1u, 2u, 4u}) {
    for (const cluster::ClusterTopology topology :
         {cluster::ClusterTopology::kRing,
          cluster::ClusterTopology::kFullyConnected}) {
      for (const bool fast_forward : {false, true}) {
        const auto run = [&](bool parallel) {
          core::AuroraConfig cfg = small_config();
          cfg.fast_forward = fast_forward;
          cluster::ClusterParams params;
          params.num_chips = chips;
          params.strategy = cluster::ShardStrategy::kHash;
          params.link.topology = topology;
          params.parallel = parallel;
          params.parallel_jobs = 2;
          cluster::ClusterEngine engine(cfg, params);
          return engine.run(ds, job);
        };
        const cluster::ClusterRunMetrics serial = run(false);
        const cluster::ClusterRunMetrics parallel = run(true);
        const auto diffs =
            cluster::diff_cluster_run_metrics(serial, parallel);
        EXPECT_TRUE(diffs.empty())
            << chips << " chip(s), " << topology_name(topology) << ", "
            << (fast_forward ? "fast-forward" : "lockstep") << ": "
            << diffs.size() << " mismatch(es), first: "
            << (diffs.empty() ? std::string() : diffs.front());
      }
    }
  }
}

// Worker count is a performance knob, never a result knob: any jobs value
// (including oversubscribed) and any repetition yields the same metrics.
TEST(ParallelEngine, DeterministicAcrossWorkerCountsAndRepeats) {
  const graph::Dataset ds = make_test_dataset(50, 120, 43);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kAgnn, ds.spec, 8);
  const auto run = [&](unsigned jobs) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = true;
    cluster::ClusterParams params;
    params.num_chips = 3;
    params.parallel = true;
    params.parallel_jobs = jobs;
    cluster::ClusterEngine engine(cfg, params);
    return engine.run(ds, job);
  };
  const cluster::ClusterRunMetrics reference = run(1);
  for (const unsigned jobs : {1u, 2u, 5u}) {
    for (int rep = 0; rep < 2; ++rep) {
      const auto diffs =
          cluster::diff_cluster_run_metrics(reference, run(jobs));
      EXPECT_TRUE(diffs.empty())
          << jobs << " worker(s), rep " << rep << ": "
          << (diffs.empty() ? std::string() : diffs.front());
    }
  }
}

// config.check_invariants attaches one checker per partition (proxy + link
// endpoint) plus the fabric's cross-partition conservation laws; a healthy
// run passes them and still matches the serial engine bit for bit.
TEST(ParallelEngine, InvariantCheckerCompatible) {
  const graph::Dataset ds = make_test_dataset(50, 120, 47);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  for (const bool fast_forward : {false, true}) {
    const auto run = [&](bool parallel) {
      core::AuroraConfig cfg = small_config();
      cfg.fast_forward = fast_forward;
      cfg.check_invariants = true;
      cfg.invariant_interval = 64;
      cluster::ClusterParams params;
      params.num_chips = 3;
      params.parallel = parallel;
      cluster::ClusterEngine engine(cfg, params);
      return engine.run(ds, job);
    };
    const cluster::ClusterRunMetrics serial = run(false);
    const cluster::ClusterRunMetrics parallel = run(true);
    const auto diffs = cluster::diff_cluster_run_metrics(serial, parallel);
    EXPECT_TRUE(diffs.empty())
        << (fast_forward ? "fast-forward" : "lockstep") << ": "
        << (diffs.empty() ? std::string() : diffs.front());
  }
}

// Partition trace shards merged by (record cycle, class, subkey) reproduce
// the serial tracer's append order exactly — same records, same sequence.
TEST(ParallelEngine, TraceMatchesSerial) {
  const graph::Dataset ds = make_test_dataset(50, 120, 53);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  const auto trace = [&](bool parallel) {
    cluster::ClusterParams params;
    params.num_chips = 3;
    params.parallel = parallel;
    cluster::ClusterEngine engine(small_config(), params);
    sim::Tracer tracer;
    tracer.enable();
    engine.set_tracer(&tracer);
    (void)engine.run(ds, job);
    return std::vector<sim::TraceRecord>(tracer.records().begin(),
                                         tracer.records().end());
  };
  const std::vector<sim::TraceRecord> serial = trace(false);
  const std::vector<sim::TraceRecord> parallel = trace(true);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_GT(serial.size(), 0u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].at, parallel[i].at) << "record " << i;
    EXPECT_EQ(serial[i].kind, parallel[i].kind) << "record " << i;
    EXPECT_EQ(serial[i].arg0, parallel[i].arg0) << "record " << i;
    EXPECT_EQ(serial[i].arg1, parallel[i].arg1) << "record " << i;
    EXPECT_EQ(serial[i].arg2, parallel[i].arg2) << "record " << i;
    EXPECT_EQ(serial[i].arg3, parallel[i].arg3) << "record " << i;
  }
}

// register_metrics after a parallel run publishes the same cluster.* probe
// names and values as the serial engine's registration.
TEST(ParallelEngine, RegistryMatchesSerial) {
  const graph::Dataset ds = make_test_dataset(40, 90, 59);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  const auto probe = [&](bool parallel) {
    cluster::ClusterParams params;
    params.num_chips = 2;
    params.parallel = parallel;
    cluster::ClusterEngine engine(small_config(), params);
    (void)engine.run(ds, job);
    MetricsRegistry registry;
    engine.register_metrics(registry);
    std::vector<std::pair<std::string, double>> out;
    for (const auto* metric : registry.match("cluster.")) {
      out.emplace_back(metric->name,
                       metric->kind == MetricKind::kHistogram
                           ? static_cast<double>(metric->histogram->total())
                           : registry.value(metric->name));
    }
    return out;
  };
  const auto serial = probe(false);
  const auto parallel = probe(true);
  EXPECT_EQ(serial, parallel);
}

// -------------------------------------------------------------- scheduler

TEST(ClusterScheduler, DataParallelSpreadsRequestsAcrossChips) {
  const graph::Dataset ds = make_test_dataset(40, 90, 37);
  std::vector<core::ScheduledRequest> queue;
  for (int i = 0; i < 4; ++i) {
    queue.push_back({core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8),
                     "req" + std::to_string(i)});
  }
  cluster::ClusterParams params;
  params.num_chips = 2;
  cluster::ClusterScheduler scheduler(small_config(), params);
  const cluster::ClusterScheduleResult result =
      scheduler.run(ds, queue, cluster::DispatchMode::kDataParallel);

  ASSERT_EQ(result.outcomes.size(), 4u);
  bool chip0 = false;
  bool chip1 = false;
  Cycle latency_sum = 0;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].label, "req" + std::to_string(i));
    chip0 |= result.outcomes[i].chip == 0;
    chip1 |= result.outcomes[i].chip == 1;
    latency_sum += result.outcomes[i].latency();
  }
  EXPECT_TRUE(chip0 && chip1) << "both chips should serve requests";
  // Two chips in parallel beat a serial schedule of the same requests.
  EXPECT_LT(result.makespan, latency_sum);
  ASSERT_EQ(result.chip_timeline.size(), 2u);
}

TEST(ClusterScheduler, ShardParallelMatchesClusterEngineLatency) {
  const graph::Dataset ds = make_test_dataset(40, 90, 41);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  cluster::ClusterParams params;
  params.num_chips = 2;
  const core::AuroraConfig cfg = small_config();

  cluster::ClusterEngine engine(cfg, params);
  const Cycle engine_total = engine.run(ds, job).total_cycles;

  cluster::ClusterScheduler scheduler(cfg, params);
  const cluster::ClusterScheduleResult result = scheduler.run(
      ds, {{job, "only"}}, cluster::DispatchMode::kShardParallel);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].latency(), engine_total);
  EXPECT_EQ(result.outcomes[0].metrics.total_cycles, engine_total);
  EXPECT_EQ(result.makespan, engine_total);
  EXPECT_GT(
      result.outcomes[0].metrics.counters.get("cluster.halo_bytes_sent"), 0u);
}

}  // namespace
}  // namespace aurora
