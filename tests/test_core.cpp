// Tests for the Aurora core: controllers, sub-accelerator formation, DRAM
// traffic accounting, the cycle engine, the analytic model, and the facade.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/config_io.hpp"
#include "core/frontend.hpp"
#include "sim/simulator.hpp"
#include "core/functional_engine.hpp"
#include "core/scheduler.hpp"
#include "core/sub_accelerators.hpp"
#include "gnn/reference.hpp"
#include "graph/generators.hpp"
#include "sim/sampler.hpp"
#include "sim/trace.hpp"

namespace aurora::core {
namespace {

AuroraConfig small_config() {
  AuroraConfig c = AuroraConfig::bench();
  c.array_dim = 8;
  c.noc.k = 8;
  return c;
}

graph::Dataset small_dataset(double scale = 0.05) {
  return graph::make_dataset(graph::DatasetId::kCora, scale);
}

// ----------------------------------------------------------- controllers

TEST(RequestDispatcher, FifoOrderAndIds) {
  RequestDispatcher d;
  d.submit({gnn::GnnModel::kGcn, {8, 4}, 0});
  d.submit({gnn::GnnModel::kGin, {8, 4}, 0});
  EXPECT_TRUE(d.has_pending());
  const HostRequest a = d.next();
  const HostRequest b = d.next();
  EXPECT_EQ(a.model, gnn::GnnModel::kGcn);
  EXPECT_EQ(b.model, gnn::GnnModel::kGin);
  EXPECT_LT(a.request_id, b.request_id);
  EXPECT_FALSE(d.has_pending());
  EXPECT_THROW((void)d.next(), Error);
}

TEST(InstructionBuffer, BoundedFifo) {
  InstructionBuffer buf(2);
  EXPECT_TRUE(buf.push({InstrKind::kLoadSubgraph, 0}));
  EXPECT_TRUE(buf.push({InstrKind::kRunAggregation, 0}));
  EXPECT_FALSE(buf.push({InstrKind::kStoreOutputs, 0}));
  Instruction i;
  EXPECT_TRUE(buf.pop(i));
  EXPECT_EQ(i.kind, InstrKind::kLoadSubgraph);
}

TEST(InstructionStream, SkipsAbsentPhases) {
  const auto wf_gin =
      gnn::generate_workflow(gnn::GnnModel::kGin, {8, 4}, 100, 400);
  const auto stream = build_instruction_stream(wf_gin, 2);
  for (const auto& instr : stream) {
    EXPECT_NE(instr.kind, InstrKind::kRunEdgeUpdate);
  }
  // Per subgraph: configure NoC + PEs, load, aggregate, vertex update, store.
  EXPECT_EQ(stream.size(), 2u * 6);

  const auto wf_ec =
      gnn::generate_workflow(gnn::GnnModel::kEdgeConv1, {8, 4}, 100, 400);
  const auto stream_ec = build_instruction_stream(wf_ec, 1);
  bool has_vu = false;
  for (const auto& instr : stream_ec) {
    has_vu = has_vu || instr.kind == InstrKind::kRunVertexUpdate;
  }
  EXPECT_FALSE(has_vu);
}

TEST(ConfigurationUnit, LatencyAndSwitchWrites) {
  ConfigurationUnit cu(32);
  EXPECT_EQ(cu.latency_per_reconfiguration(), 63u);  // 2K-1 (paper VI-D)
  EXPECT_EQ(cu.exposed_cycles(), 0u);
  noc::NocConfig cfg(32);
  cfg.add_row_segment({0, 0, 31});
  EXPECT_GT(cu.apply(cfg), 0u);
  EXPECT_EQ(cu.exposed_cycles(), 63u);
  EXPECT_EQ(cu.apply(cfg), 0u);  // unchanged config: no writes
  EXPECT_EQ(cu.count(), 2u);
}

// ----------------------------------------------------- sub-accelerator plan

TEST(SubAccelerators, RowQuantisedSplit) {
  AuroraConfig cfg = small_config();
  partition::PartitionResult split;
  split.a = 16;  // 25 % of 64 PEs -> 2 of 8 rows
  split.b = 48;
  const SubAcceleratorPlan plan = make_plan(cfg, split);
  EXPECT_FALSE(plan.single_accelerator);
  EXPECT_EQ(plan.sub_a.rows(), 2u);
  EXPECT_EQ(plan.sub_b.rows(), 6u);
  EXPECT_EQ(plan.sub_a_pes() + plan.sub_b_pes(), 64u);
}

TEST(SubAccelerators, AtLeastOneRowEach) {
  AuroraConfig cfg = small_config();
  partition::PartitionResult split;
  split.a = 1;
  split.b = 63;
  EXPECT_EQ(make_plan(cfg, split).sub_a.rows(), 1u);
  split.a = 63;
  split.b = 1;
  EXPECT_EQ(make_plan(cfg, split).sub_b.rows(), 1u);
}

TEST(SubAccelerators, SingleAcceleratorForEdgeConv) {
  AuroraConfig cfg = small_config();
  partition::PartitionResult split;
  split.a = 64;
  split.b = 0;
  split.single_accelerator = true;
  const SubAcceleratorPlan plan = make_plan(cfg, split);
  EXPECT_TRUE(plan.single_accelerator);
  EXPECT_EQ(plan.sub_a_pes(), 64u);
  EXPECT_TRUE(plan.rings.empty());
}

TEST(SubAccelerators, RingsCoverSubBWithoutOverlap) {
  AuroraConfig cfg = small_config();
  cfg.ring_size = 4;
  partition::PartitionResult split;
  split.a = 16;
  split.b = 48;
  const SubAcceleratorPlan plan = make_plan(cfg, split);
  std::set<noc::NodeId> seen;
  for (const auto& ring : plan.rings) {
    EXPECT_GE(ring.nodes.size(), 2u);
    for (noc::NodeId node : ring.nodes) {
      EXPECT_TRUE(plan.sub_b.contains(node));
      EXPECT_TRUE(seen.insert(node).second) << "node in two rings";
    }
  }
  EXPECT_EQ(seen.size(), plan.sub_b_pes());
}

TEST(SubAccelerators, ComposedConfigIsValid) {
  AuroraConfig cfg = small_config();
  const auto ds = small_dataset();
  const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn, {32, 8},
                                         ds.num_vertices(), ds.num_edges());
  const auto split = partition::partition(
      partition::partition_input_from_workflow(wf, cfg.num_pes(),
                                               cfg.flops_per_pe));
  const SubAcceleratorPlan plan = make_plan(cfg, split);
  mapping::MapperParams mp;
  mp.region = plan.sub_a;
  mp.pe_vertex_slots = 2 * ds.num_vertices() / plan.sub_a_pes() + 4;
  const auto map =
      mapping::degree_aware_map(ds.graph, 0, ds.num_vertices(), mp);
  // compose_noc_config throws on overlapping segments / broken rings.
  const noc::NocConfig noc_cfg = compose_noc_config(plan, map);
  EXPECT_EQ(noc_cfg.rings().size(), plan.rings.size());
  EXPECT_FALSE(noc_cfg.row_segments().empty());
}

// ------------------------------------------------------------ DRAM traffic

TEST(DramTraffic, SparseInputShrinksLayer0) {
  DramTrafficParams dense;
  DramTrafficParams sparse;
  sparse.sparse_input_features = true;
  sparse.input_feature_density = 0.01;
  EXPECT_EQ(feature_vector_bytes(1000, dense), 8000u);
  EXPECT_EQ(feature_vector_bytes(1000, sparse), 120u);  // 10 nnz x 12 B
}

TEST(DramTraffic, ComponentsAddUp) {
  const auto ds = small_dataset();
  const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn, {64, 16},
                                         ds.num_vertices(), ds.num_edges());
  graph::TilingParams tp;
  tp.capacity_bytes = 1 << 30;
  tp.feature_bytes = 64 * 8;
  const auto tiling = graph::tile_graph(ds.graph, tp);
  const auto t = aurora_dram_traffic(ds, wf, tiling, DramTrafficParams{});
  EXPECT_EQ(t.total(), t.input_features + t.halo_features + t.adjacency +
                           t.edge_embeddings + t.weights +
                           t.intermediate_spill + t.output_features);
  EXPECT_EQ(t.intermediate_spill, 0u);  // fused phases never spill
  EXPECT_EQ(t.halo_features, 0u);       // single tile
  EXPECT_EQ(t.input_features,
            static_cast<Bytes>(ds.num_vertices()) * 64 * 8);
  EXPECT_EQ(t.edge_embeddings, 0u);  // GCN carries no edge state
}

TEST(DramTraffic, EdgeEmbeddingModelsPayForEdgeState) {
  const auto ds = small_dataset();
  graph::TilingParams tp;
  tp.capacity_bytes = 1 << 30;
  tp.feature_bytes = 64 * 8;
  const auto tiling = graph::tile_graph(ds.graph, tp);
  const auto wf_gat =
      gnn::generate_workflow(gnn::GnnModel::kVanillaAttention, {64, 16},
                             ds.num_vertices(), ds.num_edges());
  const auto t = aurora_dram_traffic(ds, wf_gat, tiling, DramTrafficParams{});
  EXPECT_GT(t.edge_embeddings, 0u);
}

TEST(DramTraffic, MoreTilesMeansMoreHaloTraffic) {
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.2);
  const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn, {64, 16},
                                         ds.num_vertices(), ds.num_edges());
  graph::TilingParams tp;
  tp.feature_bytes = 64 * 8;
  tp.capacity_bytes = 1 << 30;
  const auto one = aurora_dram_traffic(ds, wf, graph::tile_graph(ds.graph, tp),
                                       DramTrafficParams{});
  tp.capacity_bytes = 64 * 1024;
  const auto many = aurora_dram_traffic(
      ds, wf, graph::tile_graph(ds.graph, tp), DramTrafficParams{});
  EXPECT_GT(many.halo_features, one.halo_features);
  EXPECT_GT(many.total(), one.total());
}

// ------------------------------------------------------------ cycle engine

TEST(CycleEngine, GcnLayerRunsToCompletion) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto ds = small_dataset();
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_GT(m.compute_cycles, 0u);
  EXPECT_GT(m.onchip_comm_cycles, 0u);
  EXPECT_GT(m.dram_cycles, 0u);
  EXPECT_GT(m.dram_bytes, 0u);
  EXPECT_GT(m.noc_messages, 0u);
  EXPECT_GT(m.partition_a, 0u);
  EXPECT_GT(m.partition_b, 0u);
  EXPECT_GT(m.energy.total_pj(), 0.0);
  EXPECT_GE(m.num_subgraphs, 1u);
}

class CycleEngineAllModels : public ::testing::TestWithParam<gnn::GnnModel> {};

TEST_P(CycleEngineAllModels, EveryModelExecutes) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto ds = small_dataset(0.03);
  const auto m = accel.run_layer(ds, GetParam(), {16, 8}, 1);
  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_GT(m.noc_messages, 0u);
  const auto wf = gnn::generate_workflow(GetParam(), {16, 8},
                                         ds.num_vertices(), ds.num_edges());
  if (!wf.needs_vertex_update()) {
    EXPECT_EQ(m.partition_b, 0u);  // EdgeConv: single accelerator
  } else {
    EXPECT_GT(m.partition_b, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, CycleEngineAllModels,
                         ::testing::ValuesIn(gnn::kAllModels),
                         [](const auto& param_info) {
                           std::string n = gnn::model_name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(CycleEngine, DeterministicAcrossRuns) {
  AuroraConfig cfg = small_config();
  const auto ds = small_dataset();
  AuroraAccelerator a(cfg), b(cfg);
  const auto m1 = a.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  const auto m2 = b.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  EXPECT_EQ(m1.total_cycles, m2.total_cycles);
  EXPECT_EQ(m1.onchip_comm_cycles, m2.onchip_comm_cycles);
  EXPECT_DOUBLE_EQ(m1.energy.total_pj(), m2.energy.total_pj());
}

// ---------------------------------------- fast-forward equivalence (tentpole)

/// Fast-forward must reproduce the lockstep engine *bit for bit*: the jumps
/// only skip cycles every component proved dead, so every reported number —
/// cycle counts, NoC stats, DRAM access counts, per-component counters —
/// must match exactly, not approximately.
void expect_identical_metrics(const RunMetrics& ff, const RunMetrics& ls,
                              const char* what) {
  EXPECT_EQ(ff.total_cycles, ls.total_cycles) << what;
  EXPECT_EQ(ff.compute_cycles, ls.compute_cycles) << what;
  EXPECT_EQ(ff.onchip_comm_cycles, ls.onchip_comm_cycles) << what;
  EXPECT_EQ(ff.dram_cycles, ls.dram_cycles) << what;
  EXPECT_EQ(ff.reconfig_cycles, ls.reconfig_cycles) << what;
  EXPECT_EQ(ff.dram_bytes, ls.dram_bytes) << what;
  EXPECT_EQ(ff.dram_accesses, ls.dram_accesses) << what;
  EXPECT_EQ(ff.noc_messages, ls.noc_messages) << what;
  EXPECT_DOUBLE_EQ(ff.avg_hops, ls.avg_hops) << what;
  EXPECT_EQ(ff.bypass_messages, ls.bypass_messages) << what;
  EXPECT_EQ(ff.num_subgraphs, ls.num_subgraphs) << what;
  EXPECT_EQ(ff.switch_writes, ls.switch_writes) << what;
  EXPECT_DOUBLE_EQ(ff.pe_utilization, ls.pe_utilization) << what;
  EXPECT_DOUBLE_EQ(ff.energy.total_pj(), ls.energy.total_pj()) << what;
  EXPECT_EQ(ff.noc_heatmap, ls.noc_heatmap) << what;
  EXPECT_EQ(ff.pe_heatmap, ls.pe_heatmap) << what;
  // The counter map covers every component event the engine exports
  // (noc.*, dram.* including refreshes and row hit/miss/conflict, pe.*).
  // sim.cycles_skipped is the one intentional difference: it reports what
  // the scheduler skipped, which is 0 by definition in lockstep.
  auto ffc = ff.counters.all();
  auto lsc = ls.counters.all();
  EXPECT_GT(ffc["sim.cycles_skipped"], 0u) << what;  // jumps really happened
  EXPECT_EQ(lsc["sim.cycles_skipped"], 0u) << what;
  ffc.erase("sim.cycles_skipped");
  lsc.erase("sim.cycles_skipped");
  EXPECT_TRUE(ffc == lsc) << what;
}

TEST(CycleEngine, FastForwardMatchesLockstepAcrossDatasets) {
  AuroraConfig lockstep_cfg = small_config();
  lockstep_cfg.fast_forward = false;
  AuroraConfig ff_cfg = small_config();
  ff_cfg.fast_forward = true;
  for (graph::DatasetId id :
       {graph::DatasetId::kCora, graph::DatasetId::kCiteseer}) {
    const auto ds = graph::make_dataset(id, 0.05);
    AuroraAccelerator lockstep(lockstep_cfg), ff(ff_cfg);
    const auto ml = lockstep.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
    const auto mf = ff.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
    expect_identical_metrics(mf, ml, graph::dataset_name(id));
  }
}

TEST(CycleEngine, FastForwardMatchesLockstepBothDataflowOrders) {
  AuroraConfig lockstep_cfg = small_config();
  lockstep_cfg.fast_forward = false;
  AuroraConfig ff_cfg = small_config();
  ff_cfg.fast_forward = true;
  const auto ds = small_dataset();
  // GCN runs update-first, AGNN aggregation-first: both dependency graphs
  // (and thus both tick interleavings) must survive the jumps.
  const auto order = [&](gnn::GnnModel model) {
    return gnn::generate_workflow(model, {32, 8}, ds.num_vertices(),
                                  ds.num_edges())
        .update_first;
  };
  ASSERT_NE(order(gnn::GnnModel::kGcn), order(gnn::GnnModel::kAgnn));
  for (gnn::GnnModel model : {gnn::GnnModel::kGcn, gnn::GnnModel::kAgnn}) {
    AuroraAccelerator lockstep(lockstep_cfg), ff(ff_cfg);
    const auto ml = lockstep.run_layer(ds, model, {32, 8}, 1);
    const auto mf = ff.run_layer(ds, model, {32, 8}, 1);
    expect_identical_metrics(mf, ml, gnn::model_name(model));
  }
}

// ---------------------------------------------- observability equivalence

/// Attaching the tracer and sampler must not change any reported number:
/// phase tracking is always-on, the sampler is a read-only component whose
/// ticks are no-ops for everything else, and the tracer only records. The
/// single permitted difference is the scheduler diagnostic
/// sim.cycles_skipped — the sampler pins fast-forward jumps to sample
/// boundaries, so fewer (provably dead) cycles get skipped.
void expect_observability_invariant(const RunMetrics& on,
                                    const RunMetrics& off, const char* what) {
  EXPECT_EQ(on.total_cycles, off.total_cycles) << what;
  EXPECT_EQ(on.compute_cycles, off.compute_cycles) << what;
  EXPECT_EQ(on.onchip_comm_cycles, off.onchip_comm_cycles) << what;
  EXPECT_EQ(on.dram_cycles, off.dram_cycles) << what;
  EXPECT_EQ(on.dram_bytes, off.dram_bytes) << what;
  EXPECT_EQ(on.dram_accesses, off.dram_accesses) << what;
  EXPECT_EQ(on.noc_messages, off.noc_messages) << what;
  EXPECT_DOUBLE_EQ(on.avg_hops, off.avg_hops) << what;
  EXPECT_DOUBLE_EQ(on.pe_utilization, off.pe_utilization) << what;
  EXPECT_DOUBLE_EQ(on.energy.total_pj(), off.energy.total_pj()) << what;
  EXPECT_EQ(on.pe_heatmap, off.pe_heatmap) << what;
  for (std::size_t p = 0; p < on.phases.size(); ++p) {
    EXPECT_EQ(on.phases[p].active_cycles, off.phases[p].active_cycles) << what;
    EXPECT_EQ(on.phases[p].dram_bytes, off.phases[p].dram_bytes) << what;
    EXPECT_EQ(on.phases[p].noc_messages, off.phases[p].noc_messages) << what;
  }
  EXPECT_EQ(on.noc_packet_latency.total(), off.noc_packet_latency.total())
      << what;
  EXPECT_DOUBLE_EQ(on.noc_packet_latency.quantile(0.99),
                   off.noc_packet_latency.quantile(0.99))
      << what;
  EXPECT_EQ(on.dram_request_latency.total(), off.dram_request_latency.total())
      << what;
  auto onc = on.counters.all();
  auto offc = off.counters.all();
  onc.erase("sim.cycles_skipped");
  offc.erase("sim.cycles_skipped");
  EXPECT_TRUE(onc == offc) << what;
}

TEST(Observability, EnabledRunMatchesDisabledRun) {
  const auto ds = small_dataset();
  for (bool fast_forward : {false, true}) {
    AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    AuroraAccelerator plain(cfg), observed(cfg);
    sim::Tracer tracer;
    tracer.enable();
    sim::Sampler sampler(64);
    observed.set_tracer(&tracer);
    observed.set_sampler(&sampler);
    const auto off = plain.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
    const auto on = observed.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
    expect_observability_invariant(on, off,
                                   fast_forward ? "fast-forward" : "lockstep");
    // The observers really observed.
    EXPECT_GT(tracer.count(sim::TraceEvent::kPhaseSpan), 0u);
    EXPECT_GT(tracer.count(sim::TraceEvent::kDramSpan), 0u);
    EXPECT_GT(sampler.num_samples(), 0u);
    EXPECT_GT(sampler.series().size(), 1u);
  }
}

TEST(Observability, SamplerSeriesMatchAcrossSchedulerModes) {
  // The sampler-under-fast-forward contract at engine scale: jumps land on
  // sample boundaries where all skipped ticks were no-ops, so the sampled
  // time series is bit-identical to a lockstep run's.
  const auto ds = small_dataset();
  auto run = [&](bool fast_forward, std::vector<Cycle>& cycles,
                 std::vector<sim::Sampler::Series>& series) {
    AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    AuroraAccelerator accel(cfg);
    sim::Sampler sampler(32);
    accel.set_sampler(&sampler);
    (void)accel.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
    cycles = sampler.sample_cycles();
    series = sampler.series();
  };
  std::vector<Cycle> ff_cycles, ls_cycles;
  std::vector<sim::Sampler::Series> ff_series, ls_series;
  run(true, ff_cycles, ff_series);
  run(false, ls_cycles, ls_series);
  EXPECT_EQ(ff_cycles, ls_cycles);
  ASSERT_EQ(ff_series.size(), ls_series.size());
  for (std::size_t i = 0; i < ff_series.size(); ++i) {
    EXPECT_EQ(ff_series[i].name, ls_series[i].name);
    EXPECT_EQ(ff_series[i].values, ls_series[i].values) << ff_series[i].name;
  }
}

TEST(Observability, CyclePhaseAttributionSumsToTotals) {
  AuroraConfig cfg = small_config();
  const auto ds = small_dataset();
  AuroraAccelerator accel(cfg);
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  std::uint64_t msg_sum = 0;
  Bytes byte_sum = 0;
  for (const auto& p : m.phases) {
    msg_sum += p.noc_messages;
    byte_sum += p.dram_bytes;
  }
  EXPECT_EQ(msg_sum, m.noc_messages);
  EXPECT_EQ(byte_sum, m.dram_bytes);
  EXPECT_GT(m.phase(gnn::Phase::kAggregation).active_cycles, 0u);
  EXPECT_GT(m.phase(gnn::Phase::kVertexUpdate).active_cycles, 0u);
  // The latency histograms were measured, not left at their defaults.
  EXPECT_EQ(m.noc_packet_latency.total(),
            m.counters.get("noc.packets_delivered"));
  EXPECT_GT(m.dram_request_latency.total(), 0u);
}

TEST(Observability, AnalyticPhaseAttributionSumsToTotals) {
  AuroraConfig cfg = small_config();
  cfg.mode = SimMode::kAnalytic;
  const auto ds = small_dataset();
  AuroraAccelerator accel(cfg);
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  std::uint64_t msg_sum = 0;
  Bytes byte_sum = 0;
  Cycle active_sum = 0;
  for (const auto& p : m.phases) {
    msg_sum += p.noc_messages;
    byte_sum += p.dram_bytes;
    active_sum += p.active_cycles;
  }
  EXPECT_EQ(msg_sum, m.noc_messages);
  EXPECT_EQ(byte_sum, m.dram_bytes);
  EXPECT_GT(active_sum, 0u);
  // Analytic runs report the same schema with empty distributions.
  EXPECT_EQ(m.noc_packet_latency.total(), 0u);
  EXPECT_EQ(m.dram_request_latency.total(), 0u);
}

TEST(CycleEngine, FastForwardConfigRoundTrips) {
  AuroraConfig cfg = small_config();
  cfg.fast_forward = false;
  std::istringstream in(config_to_ini(cfg));
  const auto restored = config_from_ini(IniFile::parse(in));
  EXPECT_FALSE(restored.fast_forward);
  EXPECT_TRUE(AuroraConfig{}.fast_forward);  // default on
}

TEST(CycleEngine, BiggerGraphTakesLonger) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto small = small_dataset(0.03);
  const auto big = small_dataset(0.1);
  const auto ms = accel.run_layer(small, gnn::GnnModel::kGcn, {32, 8}, 1);
  const auto mb = accel.run_layer(big, gnn::GnnModel::kGcn, {32, 8}, 1);
  EXPECT_GT(mb.total_cycles, ms.total_cycles);
  EXPECT_GT(mb.dram_bytes, ms.dram_bytes);
}

TEST(CycleEngine, SparseLayer0CutsDramTraffic) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto ds = small_dataset();
  const auto sparse = accel.run_layer(ds, gnn::GnnModel::kGcn, {64, 16}, 0);
  const auto dense = accel.run_layer(ds, gnn::GnnModel::kGcn, {64, 16}, 1);
  EXPECT_LT(sparse.dram_bytes, dense.dram_bytes);
}

TEST(CycleEngine, MultiLayerJobAccumulates) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto ds = small_dataset(0.03);
  GnnJob job;
  job.model = gnn::GnnModel::kGcn;
  job.layers = {{16, 8}, {8, 4}};
  const auto total = accel.run(ds, job);
  const auto l0 = accel.run_layer(ds, job.model, job.layers[0], 0);
  EXPECT_GT(total.total_cycles, l0.total_cycles);
  EXPECT_EQ(total.num_subgraphs,
            l0.num_subgraphs +
                accel.run_layer(ds, job.model, job.layers[1], 1).num_subgraphs);
}

TEST(CycleEngine, RunPendingDrainsDispatcher) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto ds = small_dataset(0.03);
  accel.request_dispatcher().submit({gnn::GnnModel::kGcn, {16, 8}, 0});
  accel.request_dispatcher().submit({gnn::GnnModel::kGin, {16, 8}, 0});
  const auto results = accel.run_pending(ds);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(accel.request_dispatcher().has_pending());
}

// ----------------------------------------------------------- analytic model

TEST(AnalyticModel, AgreesWithCycleEngineWithinFactor) {
  // Cross-validation of the calibrated constants: total cycles within 2x,
  // DRAM bytes near-identical (same traffic accounting).
  AuroraConfig cfg = small_config();
  const auto ds = small_dataset(0.1);
  AuroraAccelerator cycle(cfg);
  cfg.mode = SimMode::kAnalytic;
  AuroraAccelerator analytic(cfg);
  for (gnn::GnnModel model :
       {gnn::GnnModel::kGcn, gnn::GnnModel::kGin, gnn::GnnModel::kAgnn}) {
    const auto mc = cycle.run_layer(ds, model, {64, 16}, 1);
    const auto ma = analytic.run_layer(ds, model, {64, 16}, 1);
    EXPECT_LT(ma.total_cycles, 2 * mc.total_cycles) << gnn::model_name(model);
    EXPECT_GT(2 * ma.total_cycles, mc.total_cycles) << gnn::model_name(model);
    const double dram_ratio = static_cast<double>(ma.dram_bytes) /
                              static_cast<double>(mc.dram_bytes);
    EXPECT_NEAR(dram_ratio, 1.0, 0.05) << gnn::model_name(model);
  }
}

TEST(AnalyticModel, HashingMappingIsWorse) {
  AuroraConfig cfg = small_config();
  cfg.mode = SimMode::kAnalytic;
  const auto ds = small_dataset(0.2);
  AnalyticModel model(cfg);
  const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn, {64, 16},
                                         ds.num_vertices(), ds.num_edges());
  DramTrafficParams tp;
  const auto aware = model.run_layer(ds, wf, tp);
  const auto hashed = model.run_layer_hashing(ds, wf, tp);
  EXPECT_LT(aware.avg_hops, hashed.avg_hops);
  EXPECT_LE(aware.onchip_comm_cycles, hashed.onchip_comm_cycles);
  EXPECT_GT(aware.bypass_messages, 0u);
  EXPECT_EQ(hashed.bypass_messages, 0u);
}

TEST(AnalyticModel, PaperScaleConfigRunsFullCora) {
  AuroraConfig cfg = AuroraConfig::paper();
  AuroraAccelerator accel(cfg);
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 1.0);
  const auto m =
      accel.run_layer(ds, gnn::GnnModel::kGcn, {ds.spec.feature_dim, 16}, 0);
  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_GT(m.num_subgraphs, 0u);
}

TEST(Metrics, AccumulationSums) {
  RunMetrics a, b;
  a.total_cycles = 10;
  a.dram_bytes = 100;
  a.noc_messages = 10;
  a.avg_hops = 2.0;
  b.total_cycles = 5;
  b.dram_bytes = 50;
  b.noc_messages = 30;
  b.avg_hops = 4.0;
  a += b;
  EXPECT_EQ(a.total_cycles, 15u);
  EXPECT_EQ(a.dram_bytes, 150u);
  EXPECT_NEAR(a.avg_hops, 3.5, 1e-9);  // message-weighted
}


// ---------------------------------------------- functional (value) engine

class FunctionalAllModels : public ::testing::TestWithParam<gnn::GnnModel> {};

TEST_P(FunctionalAllModels, DistributedDataflowMatchesGoldenExecutor) {
  // The mapped, ring-sliced, structural-datapath execution must reproduce
  // the dense reference executor to round-off, for every model in the zoo.
  Rng grng(123);
  const auto g = graph::generate_erdos_renyi(40, 120, grng);
  graph::Dataset ds;
  ds.spec.name = "unit";
  ds.graph = g;
  ds.degree_stats = graph::compute_degree_stats(g);

  const std::size_t f = 12, h = 6;
  gnn::Matrix x(g.num_vertices(), f);
  Rng xrng(7);
  x.randomize(xrng);
  Rng prng(11);
  const auto params = gnn::make_reference_params(GetParam(), f, h, prng);

  FunctionalEngine engine(small_config());
  const gnn::Matrix got = engine.run_layer(ds, GetParam(), x, params);
  const gnn::Matrix want =
      gnn::reference_layer(GetParam(), g, x, params);

  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  double worst = 0.0;
  for (std::size_t r = 0; r < got.rows(); ++r) {
    worst = std::max(worst, gnn::max_abs_diff(got.row(r), want.row(r)));
  }
  EXPECT_LT(worst, 1e-9) << gnn::model_name(GetParam());

  // The distributed path was really exercised.
  const auto& s = engine.stats();
  EXPECT_GT(s.ring_stages, 0u);
  EXPECT_GT(s.accumulations, 0u);
  EXPECT_GE(s.tiles, 1u);
  EXPECT_GT(s.sub_a_pes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, FunctionalAllModels,
                         ::testing::ValuesIn(gnn::kAllModels),
                         [](const auto& param_info) {
                           std::string n = gnn::model_name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(FunctionalEngine, DeterministicValues) {
  Rng grng(5);
  const auto g = graph::generate_erdos_renyi(20, 60, grng);
  graph::Dataset ds;
  ds.graph = g;
  ds.degree_stats = graph::compute_degree_stats(g);
  gnn::Matrix x(g.num_vertices(), 8);
  Rng xrng(3);
  x.randomize(xrng);
  Rng prng(4);
  const auto params =
      gnn::make_reference_params(gnn::GnnModel::kGcn, 8, 4, prng);
  FunctionalEngine a(small_config()), b(small_config());
  EXPECT_EQ(a.run_layer(ds, gnn::GnnModel::kGcn, x, params).data(),
            b.run_layer(ds, gnn::GnnModel::kGcn, x, params).data());
}

TEST(FunctionalEngine, MultiTileExecutionStillCorrect) {
  // Force several tiles with a tiny buffer; values must not change.
  Rng grng(9);
  const auto g = graph::generate_erdos_renyi(60, 200, grng);
  graph::Dataset ds;
  ds.graph = g;
  ds.degree_stats = graph::compute_degree_stats(g);
  gnn::Matrix x(g.num_vertices(), 8);
  Rng xrng(2);
  x.randomize(xrng);
  Rng prng(6);
  const auto params =
      gnn::make_reference_params(gnn::GnnModel::kGin, 8, 4, prng);

  AuroraConfig tiny = small_config();
  tiny.pe.bank_buffer_bytes = 96;  // force many tiles
  FunctionalEngine engine(tiny);
  const auto got = engine.run_layer(ds, gnn::GnnModel::kGin, x, params);
  EXPECT_GT(engine.stats().tiles, 1u);
  const auto want = gnn::reference_layer(gnn::GnnModel::kGin, g, x, params);
  for (std::size_t r = 0; r < got.rows(); ++r) {
    EXPECT_LT(gnn::max_abs_diff(got.row(r), want.row(r)), 1e-9);
  }
}



TEST(CycleEngine, TracerRecordsRunStructure) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  sim::Tracer tracer;
  tracer.enable();
  accel.set_tracer(&tracer);
  const auto ds = small_dataset();
  (void)accel.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  EXPECT_GT(tracer.count(sim::TraceEvent::kTileStart), 0u);
  EXPECT_GT(tracer.count(sim::TraceEvent::kReconfigure), 0u);
  EXPECT_GT(tracer.count(sim::TraceEvent::kDramRequest), 0u);
  // Every delivered packet was injected.
  EXPECT_EQ(tracer.count(sim::TraceEvent::kPacketInjected),
            tracer.count(sim::TraceEvent::kPacketDelivered));
  EXPECT_GT(tracer.count(sim::TraceEvent::kTaskComplete), 0u);
  const std::string timeline = tracer.render_timeline();
  EXPECT_NE(timeline.find("packet-delivered"), std::string::npos);
  // A disabled tracer adds nothing on a second run.
  tracer.clear();
  tracer.enable(false);
  (void)accel.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  EXPECT_EQ(tracer.size(), 0u);
}


class SparseLayer0 : public ::testing::TestWithParam<gnn::GnnModel> {};

TEST_P(SparseLayer0, CompressedExecutionMatchesDensified) {
  Rng grng(55);
  const auto g = graph::generate_erdos_renyi(30, 90, grng);
  graph::Dataset ds;
  ds.graph = g;
  ds.degree_stats = graph::compute_degree_stats(g);
  Rng xrng(6);
  const auto xs = gnn::SparseMatrix::random(g.num_vertices(), 40, 0.1, xrng);
  Rng prng(8);
  const auto params = gnn::make_reference_params(GetParam(), 40, 8, prng);

  FunctionalEngine engine(small_config());
  const auto sparse_out = engine.run_layer_sparse(ds, GetParam(), xs, params);
  const auto stats = engine.stats();
  FunctionalEngine dense_engine(small_config());
  const auto dense_out =
      dense_engine.run_layer(ds, GetParam(), xs.to_dense(), params);
  ASSERT_EQ(sparse_out.rows(), dense_out.rows());
  ASSERT_EQ(sparse_out.cols(), dense_out.cols());
  for (std::size_t r = 0; r < sparse_out.rows(); ++r) {
    EXPECT_LT(gnn::max_abs_diff(sparse_out.row(r), dense_out.row(r)), 1e-9);
  }
  EXPECT_GT(stats.ring_stages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConvModels, SparseLayer0,
    ::testing::Values(gnn::GnnModel::kGcn, gnn::GnnModel::kGraphSageMean,
                      gnn::GnnModel::kGin, gnn::GnnModel::kCommNet),
    [](const auto& param_info) {
      std::string n = gnn::model_name(param_info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(SparseLayer0Errors, RejectsNonConvolutionalModels) {
  Rng grng(1);
  const auto g = graph::generate_erdos_renyi(10, 20, grng);
  graph::Dataset ds;
  ds.graph = g;
  ds.degree_stats = graph::compute_degree_stats(g);
  Rng xrng(2);
  const auto xs = gnn::SparseMatrix::random(10, 8, 0.5, xrng);
  Rng prng(3);
  const auto params =
      gnn::make_reference_params(gnn::GnnModel::kAgnn, 8, 4, prng);
  FunctionalEngine engine(small_config());
  EXPECT_THROW(
      (void)engine.run_layer_sparse(ds, gnn::GnnModel::kAgnn, xs, params),
      Error);
}

TEST(CycleEngine, HeatmapAccompaniesCycleRuns) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator cycle(cfg);
  const auto ds = small_dataset(0.05);
  const auto mc = cycle.run_layer(ds, gnn::GnnModel::kGcn, {16, 8}, 1);
  EXPECT_FALSE(mc.noc_heatmap.empty());
  // 8 rows of |........| style output.
  EXPECT_EQ(std::count(mc.noc_heatmap.begin(), mc.noc_heatmap.end(), '\n'),
            8);
  cfg.mode = SimMode::kAnalytic;
  AuroraAccelerator analytic(cfg);
  EXPECT_TRUE(analytic.run_layer(ds, gnn::GnnModel::kGcn, {16, 8}, 1)
                  .noc_heatmap.empty());
}

// ----------------------------------------------------- instruction dispatch

TEST(InstructionDispatcher, IssuesInOrderAtCadence) {
  InstructionBuffer buf(16);
  ASSERT_TRUE(buf.push({InstrKind::kConfigureNoc, 0}));
  ASSERT_TRUE(buf.push({InstrKind::kLoadSubgraph, 0}));
  ASSERT_TRUE(buf.push({InstrKind::kRunAggregation, 0}));
  InstructionDispatcher disp(buf, /*decode_cycles=*/2);
  std::vector<std::pair<InstrKind, Cycle>> issued;
  disp.set_issue_callback([&](const Instruction& i, Cycle at) {
    issued.emplace_back(i.kind, at);
  });
  sim::Simulator s;
  s.add(&disp);
  s.run_until_idle(100);
  ASSERT_EQ(issued.size(), 3u);
  EXPECT_EQ(issued[0].first, InstrKind::kConfigureNoc);
  EXPECT_EQ(issued[2].first, InstrKind::kRunAggregation);
  EXPECT_EQ(issued[1].second - issued[0].second, 2u);
  EXPECT_EQ(disp.issued(), 3u);
}

TEST(InstructionDispatcher, ExternalStallBlocksIssue) {
  InstructionBuffer buf(4);
  ASSERT_TRUE(buf.push({InstrKind::kStoreOutputs, 0}));
  InstructionDispatcher disp(buf);
  disp.set_stalled(true);
  sim::Simulator s;
  s.add(&disp);
  s.run_cycles(10);
  EXPECT_EQ(disp.issued(), 0u);
  EXPECT_GE(disp.stall_cycles(), 10u);
  disp.set_stalled(false);
  s.run_until_idle(100);
  EXPECT_EQ(disp.issued(), 1u);
}

TEST(InstructionDispatcher, DrivesFullStream) {
  const auto wf =
      gnn::generate_workflow(gnn::GnnModel::kGcn, {16, 8}, 100, 400);
  const auto stream = build_instruction_stream(wf, 3);
  InstructionBuffer buf(stream.size());
  for (const auto& instr : stream) ASSERT_TRUE(buf.push(instr));
  InstructionDispatcher disp(buf);
  std::uint64_t configures = 0;
  disp.set_issue_callback([&](const Instruction& i, Cycle) {
    configures += (i.kind == InstrKind::kConfigureNoc) ? 1 : 0;
  });
  sim::Simulator s;
  s.add(&disp);
  s.run_until_idle(1000);
  EXPECT_EQ(disp.issued(), stream.size());
  EXPECT_EQ(configures, 3u);  // one per subgraph
}


// ------------------------------------------------------------- scheduler

TEST(Scheduler, SequencesRequestsWithOverlap) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  Scheduler sched(accel);
  const auto ds = small_dataset(0.05);

  std::vector<ScheduledRequest> queue;
  queue.push_back({GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 16),
                   "gcn"});
  queue.push_back({GnnJob::two_layer(gnn::GnnModel::kGin, ds.spec, 16),
                   "gin"});
  queue.push_back({GnnJob::two_layer(gnn::GnnModel::kAgnn, ds.spec, 16),
                   "agnn"});
  const ScheduleResult result = sched.run(ds, queue);

  ASSERT_EQ(result.outcomes.size(), 3u);
  // Requests finish in order and the makespan is the last finish.
  for (std::size_t i = 1; i < result.outcomes.size(); ++i) {
    EXPECT_GE(result.outcomes[i].finish_cycle,
              result.outcomes[i - 1].finish_cycle);
  }
  EXPECT_EQ(result.makespan, result.outcomes.back().finish_cycle);
  // Overlap saves cycles vs back-to-back.
  Cycle back_to_back = 0;
  for (const auto& o : result.outcomes) back_to_back += o.metrics.total_cycles;
  EXPECT_LT(result.makespan, back_to_back);
  EXPECT_GT(result.overlap_savings, 0u);
  EXPECT_GT(result.avg_latency(), 0.0);
}

TEST(Scheduler, SingleRequestHasNoOverlap) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  Scheduler sched(accel);
  const auto ds = small_dataset(0.05);
  std::vector<ScheduledRequest> queue;
  queue.push_back({GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec), "only"});
  const auto result = sched.run(ds, queue);
  EXPECT_EQ(result.overlap_savings, 0u);
  EXPECT_EQ(result.makespan, result.outcomes[0].metrics.total_cycles);
}

TEST(GnnJobPresets, DepthsFollowLiterature) {
  const auto& spec = graph::dataset_spec(graph::DatasetId::kCora);
  EXPECT_EQ(GnnJob::preset(gnn::GnnModel::kGcn, spec).layers.size(), 2u);
  EXPECT_EQ(GnnJob::preset(gnn::GnnModel::kGin, spec).layers.size(), 5u);
  EXPECT_EQ(GnnJob::preset(gnn::GnnModel::kEdgeConv1, spec).layers.size(),
            4u);
  // Layer shapes chain: in -> hidden... -> classes.
  const auto job = GnnJob::preset(gnn::GnnModel::kGin, spec, 32);
  EXPECT_EQ(job.layers.front().in_dim, spec.feature_dim);
  for (std::size_t i = 1; i < job.layers.size(); ++i) {
    EXPECT_EQ(job.layers[i].in_dim, job.layers[i - 1].out_dim);
  }
  EXPECT_EQ(job.layers.back().out_dim, spec.num_classes);
}


TEST(Counters, CycleEngineExportsComponentEvents) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto ds = small_dataset(0.05);
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn, {16, 8}, 1);
  EXPECT_GT(m.counters.get("noc.packets_delivered"), 0u);
  EXPECT_EQ(m.counters.get("noc.packets_injected"),
            m.counters.get("noc.packets_delivered"));
  EXPECT_GT(m.counters.get("dram.bursts"), 0u);
  EXPECT_GT(m.counters.get("pe.tasks"), 0u);
  // Aggregated metrics agree with the counters where they overlap.
  EXPECT_EQ(m.counters.get("noc.packets_injected"), m.noc_messages);
  EXPECT_EQ(m.counters.get("dram.bursts"), m.dram_accesses);
}

TEST(Counters, MergeAcrossLayers) {
  AuroraConfig cfg = small_config();
  AuroraAccelerator accel(cfg);
  const auto ds = small_dataset(0.05);
  GnnJob job;
  job.model = gnn::GnnModel::kGcn;
  job.layers = {{16, 8}, {8, 4}};
  const auto total = accel.run(ds, job);
  const auto l0 = accel.run_layer(ds, job.model, job.layers[0], 0);
  const auto l1 = accel.run_layer(ds, job.model, job.layers[1], 1);
  EXPECT_EQ(total.counters.get("pe.tasks"),
            l0.counters.get("pe.tasks") + l1.counters.get("pe.tasks"));
}

TEST(ConfigFiles, ShippedChipConfigsLoad) {
  const std::string dir = AURORA_SOURCE_DIR;
  const auto paper = load_config(dir + "/configs/paper_chip.ini");
  EXPECT_EQ(paper.array_dim, 32u);
  EXPECT_EQ(paper.mode, SimMode::kAnalytic);
  EXPECT_EQ(paper.pe.bank_buffer_bytes, 100u * 1024);
  const auto small = load_config(dir + "/configs/small_chip.ini");
  EXPECT_EQ(small.array_dim, 16u);
  EXPECT_EQ(small.mode, SimMode::kCycleAccurate);
}

}  // namespace
}  // namespace aurora::core
