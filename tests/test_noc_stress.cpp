// Stress and property tests for the NoC: flow-control invariants under
// heavy load, combined bypass + ring configurations, and conservation laws.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "sim/simulator.hpp"

namespace aurora::noc {
namespace {

struct Harness {
  explicit Harness(NocParams p) : net(p) { s.add(&net); }
  sim::Simulator s;
  Network net;
};

/// Conservation: every injected packet is delivered exactly once, intact.
TEST(NocStress, HeavyRandomTrafficConservesPackets) {
  NocParams p;
  p.k = 8;
  p.input_buffer_flits = 2;  // minimal buffering: maximal backpressure
  Harness h(p);
  Rng rng(101);
  std::map<std::uint64_t, int> delivered;
  h.net.set_delivery_callback(
      [&](const Packet& pkt, Cycle) { ++delivered[pkt.tag]; });
  constexpr int kPackets = 2000;
  for (int i = 0; i < kPackets; ++i) {
    h.net.send(static_cast<NodeId>(rng.next_below(64)),
               static_cast<NodeId>(rng.next_below(64)),
               32 * (1 + rng.next_below(6)), i, h.s.now());
    // Interleave injection with simulation to vary in-flight pressure.
    if (i % 50 == 0) h.s.run_cycles(20);
  }
  h.s.run_until_idle(5'000'000);
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(kPackets));
  for (const auto& [tag, count] : delivered) {
    EXPECT_EQ(count, 1) << "packet " << tag << " delivered " << count;
  }
}

TEST(NocStress, AllToOneHotspotDrains) {
  NocParams p;
  p.k = 8;
  p.input_buffer_flits = 2;
  Harness h(p);
  for (NodeId src = 1; src < 64; ++src) {
    h.net.send(src, 0, 512, src, 0);
  }
  h.s.run_until_idle(5'000'000);
  EXPECT_EQ(h.net.stats().packets_delivered, 63u);
}

TEST(NocStress, BypassPlusRingsCoexist) {
  // The full Aurora configuration shape: sub-A bypass rows/cols on top,
  // sub-B rings with wrap segments below, traffic of all three kinds.
  NocParams p;
  p.k = 8;
  Harness h(p);
  NocConfig cfg(8);
  cfg.add_row_segment({0, 0, 7});      // S_PE row bypass
  cfg.add_col_segment({3, 0, 2});      // S_PE column bypass (region rows 0-2)
  cfg.add_row_segment({4, 0, 3});      // ring wrap, row 4 left
  cfg.add_row_segment({4, 4, 7});      // ring wrap, row 4 right
  RingConfig left, right;
  for (NodeId c = 0; c < 4; ++c) left.nodes.push_back(4 * 8 + c);
  for (NodeId c = 4; c < 8; ++c) right.nodes.push_back(4 * 8 + c);
  cfg.add_ring(left);
  cfg.add_ring(right);
  h.net.configure(cfg);

  // Aggregation-ish traffic into row 0, ring traffic inside row 4, and
  // boundary crossings.
  Rng rng(7);
  int expected = 0;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(24));  // rows 0-2
    h.net.send(src, static_cast<NodeId>(rng.next_below(8)), 128, i, 0);
    ++expected;
  }
  for (NodeId c = 0; c < 4; ++c) {
    h.net.send(4 * 8 + c, 4 * 8 + (c + 1) % 4, 64, 1000 + c, 0);
    ++expected;
  }
  for (int i = 0; i < 50; ++i) {
    h.net.send(static_cast<NodeId>(rng.next_below(24)),
               static_cast<NodeId>(32 + rng.next_below(32)), 128, 2000 + i,
               0);
    ++expected;
  }
  h.s.run_until_idle(5'000'000);
  EXPECT_EQ(h.net.stats().packets_delivered,
            static_cast<std::uint64_t>(expected));
  EXPECT_GT(h.net.stats().bypass_flit_hops, 0u);
}

TEST(NocStress, SegmentedBypassServesBothHalves) {
  NocParams p;
  p.k = 8;
  Harness h(p);
  NocConfig cfg(8);
  cfg.add_row_segment({2, 0, 3});
  cfg.add_row_segment({2, 4, 7});
  h.net.configure(cfg);
  // Both segment spans get used by matching long trips.
  h.net.send(to_node({2, 0}, 8), to_node({2, 3}, 8), 64, 1, 0);
  h.net.send(to_node({2, 4}, 8), to_node({2, 7}, 8), 64, 2, 0);
  h.s.run_until_idle(100000);
  EXPECT_EQ(h.net.stats().packets_delivered, 2u);
  EXPECT_EQ(h.net.stats().bypass_flit_hops, 2u * 2u);  // 2 flits x 2 packets
}

TEST(NocStress, LatencyGrowsWithLoad) {
  auto mean_latency = [](int packets) {
    NocParams p;
    p.k = 8;
    Harness h(p);
    Rng rng(5);
    for (int i = 0; i < packets; ++i) {
      h.net.send(static_cast<NodeId>(rng.next_below(64)),
                 static_cast<NodeId>(rng.next_below(64)), 256, i, 0);
    }
    h.s.run_until_idle(5'000'000);
    return h.net.stats().packet_latency.mean();
  };
  EXPECT_LT(mean_latency(20), mean_latency(2000));
}

TEST(NocStress, MoreVcsHelpUnderContention) {
  auto drain_time = [](std::uint32_t vcs) {
    NocParams p;
    p.k = 8;
    p.num_vcs = vcs;
    Harness h(p);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      h.net.send(static_cast<NodeId>(rng.next_below(64)),
                 static_cast<NodeId>(rng.next_below(64)), 256, i, 0);
    }
    return h.s.run_until_idle(5'000'000);
  };
  EXPECT_LE(drain_time(4), drain_time(1));
}

TEST(NocStress, BusyCyclesBoundedByDrainTime) {
  NocParams p;
  p.k = 4;
  Harness h(p);
  h.net.send(0, 15, 256, 0, 0);
  const Cycle end = h.s.run_until_idle(100000);
  EXPECT_LE(h.net.stats().busy_cycles, end);
  EXPECT_GT(h.net.stats().busy_cycles, 0u);
}


// ---------------------------------------------------------- traffic library

TEST(Traffic, DestinationsMatchPatternDefinitions) {
  Rng rng(1);
  // transpose: (1,2) -> (2,1) on k=4.
  EXPECT_EQ(traffic_destination(TrafficPattern::kTranspose,
                                to_node({1, 2}, 4), 4, rng),
            to_node({2, 1}, 4));
  // bit-complement: id -> n-1-id.
  EXPECT_EQ(traffic_destination(TrafficPattern::kBitComplement, 3, 4, rng),
            12u);
  // neighbor: (0,3) wraps to (0,0).
  EXPECT_EQ(traffic_destination(TrafficPattern::kNeighbor,
                                to_node({0, 3}, 4), 4, rng),
            to_node({0, 0}, 4));
  // uniform random stays in range.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(traffic_destination(TrafficPattern::kUniformRandom, 0, 4, rng),
              16u);
  }
}

TEST(Traffic, HotspotSaturatesBeforeNeighbor) {
  NocParams p;
  p.k = 4;
  const auto hotspot =
      measure_throughput(p, TrafficPattern::kHotspot, 0.2, 800);
  const auto neighbor =
      measure_throughput(p, TrafficPattern::kNeighbor, 0.2, 800);
  EXPECT_LT(hotspot.accepted_rate, neighbor.accepted_rate);
  EXPECT_GT(hotspot.avg_latency, neighbor.avg_latency);
}

TEST(Traffic, LowLoadIsAcceptedInFull) {
  NocParams p;
  p.k = 4;
  const auto r =
      measure_throughput(p, TrafficPattern::kUniformRandom, 0.02, 1000);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.accepted_rate, r.offered_rate, 0.01);
}

TEST(Traffic, DeterministicInSeed) {
  NocParams p;
  p.k = 4;
  const auto a =
      measure_throughput(p, TrafficPattern::kTranspose, 0.1, 500, 9);
  const auto b =
      measure_throughput(p, TrafficPattern::kTranspose, 0.1, 500, 9);
  EXPECT_DOUBLE_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
}

}  // namespace
}  // namespace aurora::noc
