// Tests for Algorithm 2: the resource partition heuristic.
#include <gtest/gtest.h>

#include "gnn/workflow.hpp"
#include "partition/partition.hpp"

namespace aurora::partition {
namespace {

PartitionInput balanced_input() {
  PartitionInput in;
  in.ops_edge_update = 1000;
  in.ops_aggregation = 2000;
  in.ops_vertex_update = 3000;
  in.edge_feature_dim = 4;
  in.num_edges = 500;  // E_f * m = 2000 == O_a
  in.total_pes = 16;
  in.flops_per_pe = 8.0;
  return in;
}

TEST(Partition, SplitsSumToTotal) {
  const PartitionResult r = partition(balanced_input());
  EXPECT_EQ(r.a + r.b, 16u);
  EXPECT_GE(r.a, 1u);
  EXPECT_GE(r.b, 1u);
  EXPECT_FALSE(r.single_accelerator);
}

TEST(Partition, MinimizesDiffOverAllSplits) {
  const auto in = balanced_input();
  const PartitionResult r = partition(in);
  for (std::uint32_t a = 1; a < in.total_pes; ++a) {
    const double diff = std::abs(time_sub_a(in, a) - time_sub_b(in, in.total_pes - a));
    EXPECT_GE(diff, r.diff - 1e-12) << "better split at a=" << a;
  }
}

TEST(Partition, TimesMatchAlgorithmFormulas) {
  const auto in = balanced_input();
  // a = 4: capacity 32 ops/cycle. AComp1 = 1000/32; edge-feature work =
  // 2000, so AComp2 = 0, AComp3 = 2000/32.
  EXPECT_DOUBLE_EQ(time_sub_a(in, 4), 1000.0 / 32 + 2000.0 / 32);
  EXPECT_DOUBLE_EQ(time_sub_b(in, 12), 3000.0 / (12 * 8.0));
}

TEST(Partition, MaxOfEdgeUpdateAndAggregation) {
  PartitionInput in = balanced_input();
  // Aggregation beyond the edge-feature reduction dominates edge update.
  in.ops_aggregation = 10000;  // remaining = 8000 > O_ue = 1000
  EXPECT_DOUBLE_EQ(time_sub_a(in, 4), 8000.0 / 32 + 2000.0 / 32);
}

TEST(Partition, VertexHeavyModelsGetMorePEsInB) {
  PartitionInput in = balanced_input();
  in.ops_vertex_update = 30000;
  const PartitionResult heavy = partition(in);
  in.ops_vertex_update = 300;
  const PartitionResult light = partition(in);
  EXPECT_GT(heavy.b, light.b);
}

TEST(Partition, EdgeHeavyModelsGetMorePEsInA) {
  PartitionInput in = balanced_input();
  in.ops_edge_update = 50000;
  const PartitionResult r = partition(in);
  EXPECT_GT(r.a, in.total_pes / 2);
}

TEST(Partition, NoVertexUpdateFormsSingleAccelerator) {
  PartitionInput in = balanced_input();
  in.ops_vertex_update = 0;
  const PartitionResult r = partition(in);
  EXPECT_TRUE(r.single_accelerator);
  EXPECT_EQ(r.a, in.total_pes);
  EXPECT_EQ(r.b, 0u);
  EXPECT_DOUBLE_EQ(r.t_b, 0.0);
}

TEST(Partition, NoEdgeUpdateZeroesAComp1) {
  PartitionInput in = balanced_input();
  in.ops_edge_update = 0;
  // AComp1 = 0; T_A = max(0, AComp2) + AComp3.
  EXPECT_DOUBLE_EQ(time_sub_a(in, 4), 0.0 + 2000.0 / 32);
}

TEST(Partition, BalancedSplitHasHighUtilization) {
  const PartitionResult r = partition(balanced_input());
  EXPECT_GT(r.utilization(), 0.85);
  EXPECT_LE(r.utilization(), 1.0 + 1e-12);
}

TEST(Partition, StageTimeIsTheSlowerStage) {
  PartitionResult r;
  r.t_a = 2.0;
  r.t_b = 5.0;
  EXPECT_DOUBLE_EQ(r.stage_time(), 5.0);
}

TEST(Partition, FromWorkflowPullsTheRightCounts) {
  const gnn::LayerConfig layer{.in_dim = 16, .out_dim = 8};
  const auto wf = gnn::generate_workflow(gnn::GnnModel::kGcn, layer, 100, 400);
  const PartitionInput in = partition_input_from_workflow(wf, 64, 8.0);
  EXPECT_EQ(in.ops_edge_update, wf.phase(gnn::Phase::kEdgeUpdate).total_ops);
  EXPECT_EQ(in.ops_vertex_update,
            wf.phase(gnn::Phase::kVertexUpdate).total_ops);
  // This shrinking C-GNN layer runs update-first: E_f is the H-wide
  // transformed feature.
  EXPECT_EQ(in.edge_feature_dim, 8u);
  EXPECT_EQ(in.num_edges, 400u);
  EXPECT_EQ(in.total_pes, 64u);
}

TEST(Partition, EdgeConvWorkflowIsSingleAccelerator) {
  const gnn::LayerConfig layer{.in_dim = 8, .out_dim = 8};
  const auto wf =
      gnn::generate_workflow(gnn::GnnModel::kEdgeConv1, layer, 100, 400);
  const PartitionResult r =
      partition(partition_input_from_workflow(wf, 64, 8.0));
  EXPECT_TRUE(r.single_accelerator);
}

class PartitionAllModels : public ::testing::TestWithParam<gnn::GnnModel> {};

TEST_P(PartitionAllModels, ProducesLegalSplit) {
  const gnn::LayerConfig layer{.in_dim = 32, .out_dim = 16};
  const auto wf = gnn::generate_workflow(GetParam(), layer, 500, 2500);
  const PartitionResult r =
      partition(partition_input_from_workflow(wf, 256, 8.0));
  EXPECT_EQ(r.a + r.b, 256u);
  if (!r.single_accelerator) {
    EXPECT_GE(r.a, 1u);
    EXPECT_GE(r.b, 1u);
    // The chosen split balances within one PE quantum on either side.
    const PartitionInput in = partition_input_from_workflow(wf, 256, 8.0);
    if (r.a > 1) {
      const double left = std::abs(time_sub_a(in, r.a - 1) -
                                   time_sub_b(in, 256 - r.a + 1));
      EXPECT_GE(left, r.diff - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, PartitionAllModels,
                         ::testing::ValuesIn(gnn::kAllModels),
                         [](const auto& param_info) {
                           std::string n = gnn::model_name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace aurora::partition
