// Tests for the single-chip request scheduler: submission-order execution,
// the DRAM/compute overlap model (shared with the cluster scheduler through
// the static helpers), and partition reuse across mixed-model queues.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "sim/component.hpp"

namespace aurora {
namespace {

graph::Dataset make_test_dataset(VertexId n, EdgeId undirected_edges,
                                 std::uint64_t seed) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec.name = "scheduler-test";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_erdos_renyi(n, undirected_edges, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.spec.num_directed_edges = ds.graph.num_edges();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

core::AuroraConfig small_config() {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  return cfg;
}

std::vector<core::ScheduledRequest> mixed_queue(
    const graph::DatasetSpec& spec) {
  return {
      {core::GnnJob::two_layer(gnn::GnnModel::kGcn, spec, 8), "gcn"},
      {core::GnnJob::two_layer(gnn::GnnModel::kAgnn, spec, 8), "agnn"},
      {core::GnnJob::two_layer(gnn::GnnModel::kGin, spec, 8), "gin"},
      {core::GnnJob::two_layer(gnn::GnnModel::kGcn, spec, 8), "gcn2"},
  };
}

TEST(Scheduler, PreservesSubmissionOrderAndTimeline) {
  const graph::Dataset ds = make_test_dataset(40, 90, 51);
  core::AuroraAccelerator accelerator(small_config());
  core::Scheduler scheduler(accelerator);
  const core::ScheduleResult result =
      scheduler.run(ds, mixed_queue(ds.spec));

  ASSERT_EQ(result.outcomes.size(), 4u);
  const std::vector<std::string> expected = {"gcn", "agnn", "gin", "gcn2"};
  Cycle prev_finish = 0;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const core::RequestOutcome& o = result.outcomes[i];
    EXPECT_EQ(o.label, expected[i]);
    EXPECT_LE(o.start_cycle, o.finish_cycle);
    // Requests execute in order: each starts no earlier than the overlap
    // window under its predecessor's tail.
    EXPECT_GE(o.finish_cycle, prev_finish);
    EXPECT_EQ(o.latency(), o.metrics.total_cycles);
    prev_finish = o.finish_cycle;
  }
  EXPECT_EQ(result.makespan, result.outcomes.back().finish_cycle);
  EXPECT_GT(result.avg_latency(), 0.0);
}

TEST(Scheduler, OverlapSavingsMatchHelperModel) {
  const graph::Dataset ds = make_test_dataset(40, 90, 53);
  core::AuroraAccelerator accelerator(small_config());
  core::Scheduler scheduler(accelerator);
  const core::ScheduleResult result =
      scheduler.run(ds, mixed_queue(ds.spec));

  // Recompute the overlap chain from the outcomes' own metrics: the
  // scheduler must agree with the public helper model exactly.
  Cycle expected_savings = 0;
  Cycle prev_tail = 0;
  Cycle serial = 0;
  for (const core::RequestOutcome& o : result.outcomes) {
    expected_savings += core::Scheduler::overlap_cycles(prev_tail, o.metrics);
    prev_tail = core::Scheduler::tail_compute_cycles(o.metrics);
    serial += o.metrics.total_cycles;
  }
  EXPECT_EQ(result.overlap_savings, expected_savings);
  EXPECT_EQ(result.makespan + result.overlap_savings, serial);
  // The first request has nothing to hide under.
  EXPECT_EQ(result.outcomes.front().start_cycle, 0u);
  // A mixed queue on a connected graph always finds some overlap.
  EXPECT_GT(result.overlap_savings, 0u);
}

TEST(Scheduler, HelperSpansDeriveFromSubgraphCounts) {
  const graph::Dataset ds = make_test_dataset(40, 90, 57);
  core::AuroraAccelerator accelerator(small_config());
  const core::RunMetrics m = accelerator.run(
      ds, core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8));
  const Cycle subgraphs = std::max<Cycle>(1, m.num_subgraphs);
  EXPECT_EQ(core::Scheduler::lead_dram_cycles(m),
            m.dram_cycles / subgraphs);
  EXPECT_EQ(core::Scheduler::tail_compute_cycles(m),
            m.compute_cycles / subgraphs);
  EXPECT_EQ(core::Scheduler::overlap_cycles(0, m), 0u);
  EXPECT_EQ(core::Scheduler::overlap_cycles(sim::kNoEvent, m),
            core::Scheduler::lead_dram_cycles(m));
}

TEST(Scheduler, PartitionStateReusedAcrossMixedModelQueues) {
  const graph::Dataset ds = make_test_dataset(40, 90, 59);
  // Two schedulers over the same queue on fresh accelerators must agree
  // bit for bit: partition/mapping state reuse inside one accelerator is
  // deterministic and does not leak between requests.
  const auto run_queue = [&] {
    core::AuroraAccelerator accelerator(small_config());
    core::Scheduler scheduler(accelerator);
    return scheduler.run(ds, mixed_queue(ds.spec));
  };
  const core::ScheduleResult a = run_queue();
  const core::ScheduleResult b = run_queue();
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const auto diffs =
        core::diff_run_metrics(a.outcomes[i].metrics, b.outcomes[i].metrics);
    EXPECT_TRUE(diffs.empty())
        << a.outcomes[i].label << ": "
        << (diffs.empty() ? std::string() : diffs.front());
    // Every request settled on a partition.
    EXPECT_GT(a.outcomes[i].metrics.num_subgraphs, 0u);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.overlap_savings, b.overlap_savings);

  // The same jobs run back to back on one accelerator (the serving path)
  // also match a per-request fresh accelerator: reuse is purely a
  // performance property of the software stack, not a timing one.
  core::AuroraAccelerator reused(small_config());
  core::Scheduler reused_scheduler(reused);
  const core::ScheduleResult c = reused_scheduler.run(ds, mixed_queue(ds.spec));
  for (std::size_t i = 0; i < c.outcomes.size(); ++i) {
    core::AuroraAccelerator fresh(small_config());
    const core::RunMetrics expected =
        fresh.run(ds, mixed_queue(ds.spec)[i].job);
    const auto diffs =
        core::diff_run_metrics(c.outcomes[i].metrics, expected);
    EXPECT_TRUE(diffs.empty())
        << c.outcomes[i].label << ": "
        << (diffs.empty() ? std::string() : diffs.front());
  }
}

}  // namespace
}  // namespace aurora
