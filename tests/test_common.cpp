// Unit tests for the common utility layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace aurora {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStat rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.next_normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.03);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.03);
}

TEST(Rng, PowerLawBoundsAndSkew) {
  Rng rng(17);
  RunningStat rs;
  std::uint64_t ones = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto x = rng.next_power_law(2.5, 1000);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 1000u);
    rs.add(static_cast<double>(x));
    ones += (x == 1);
  }
  // Pareto alpha=2.5: P(X rounds to 1) is large, mean small but > 1.
  EXPECT_GT(ones, 10000u);
  EXPECT_GT(rs.mean(), 1.0);
  EXPECT_LT(rs.mean(), 5.0);
}

TEST(Rng, WeightedSamplingFollowsWeights) {
  Rng rng(19);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> hits{};
  for (int i = 0; i < 20000; ++i) ++hits[rng.next_weighted(w)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.3);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(23);
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RunningStat, BasicMoments) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a, b, all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-5, 5);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(1.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(3.5);
  h.add(100.0);  // overflow -> last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
}

TEST(Histogram, Quantile) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10));
  // Nearest-rank: rank 50 of 100 falls in bucket 4, rank 100 in bucket 9,
  // both reported at the bucket's lower edge (the exact sample value here).
  EXPECT_EQ(h.quantile(0.5), 4.0);
  EXPECT_EQ(h.quantile(1.0), 9.0);
}

TEST(Histogram, QuantileSingleSampleReportsItsBucket) {
  // One exact-width sample: every quantile is that sample, not bucket 0's
  // edge (the old truncation bug) and not the bucket's upper edge.
  Histogram h(1.0, 10);
  h.add(5.0);
  EXPECT_EQ(h.quantile(0.0), 5.0);
  EXPECT_EQ(h.quantile(0.5), 5.0);
  EXPECT_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileSkipsEmptyBucketPrefix) {
  Histogram h(2.0, 8);
  h.add(10.0);  // bucket 5
  h.add(12.0);  // bucket 6
  EXPECT_EQ(h.quantile(0.0), 10.0);
  EXPECT_EQ(h.quantile(0.5), 10.0);
  EXPECT_EQ(h.quantile(1.0), 12.0);
}

TEST(Histogram, QuantileEmptyIsZero) {
  const Histogram h(1.0, 4);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Percentile, ExactNearestRank) {
  const std::vector<double> v = {30.0, 10.0, 20.0, 40.0};
  EXPECT_EQ(percentile(v, 0.0), 10.0);
  EXPECT_EQ(percentile(v, 0.25), 10.0);
  EXPECT_EQ(percentile(v, 0.5), 20.0);
  EXPECT_EQ(percentile(v, 0.51), 30.0);
  EXPECT_EQ(percentile(v, 0.99), 40.0);
  EXPECT_EQ(percentile(v, 1.0), 40.0);
}

TEST(Percentile, SingleAndEmpty) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
  EXPECT_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_EQ(percentile({7.5}, 0.5), 7.5);
  EXPECT_EQ(percentile({7.5}, 1.0), 7.5);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(1.0, 4);
  Histogram b(1.0, 4);
  a.add(0.5);
  a.add(2.5);
  b.add(2.5);
  b.add(100.0);  // overflow bucket
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(2), 2u);
  EXPECT_EQ(a.bucket_count(3), 1u);
}

TEST(Histogram, MergeRejectsMismatchedLayout) {
  Histogram a(1.0, 4);
  const Histogram wrong_width(2.0, 4);
  const Histogram wrong_buckets(1.0, 8);
  EXPECT_THROW(a.merge(wrong_width), Error);
  EXPECT_THROW(a.merge(wrong_buckets), Error);
  // A failed merge leaves the target untouched.
  EXPECT_EQ(a.total(), 0u);
}

TEST(Histogram, ResetClears) {
  Histogram h(1.0, 4);
  h.add(1.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, CountersGaugesAndHistograms) {
  MetricsRegistry reg;
  std::uint64_t hits = 7;
  double depth = 2.0;
  Histogram lat(1.0, 8);
  lat.add(3.0);
  reg.add_counter("dram.hits", &hits);
  reg.add_gauge("pe.depth", [&depth] { return depth; });
  reg.add_histogram("noc.latency", &lat);

  EXPECT_DOUBLE_EQ(reg.value("dram.hits"), 7.0);
  hits = 9;  // probes are live views, not snapshots
  EXPECT_DOUBLE_EQ(reg.value("dram.hits"), 9.0);
  EXPECT_DOUBLE_EQ(reg.value("pe.depth"), 2.0);
  ASSERT_NE(reg.find("noc.latency"), nullptr);
  EXPECT_EQ(reg.find("noc.latency")->histogram->total(), 1u);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_THROW((void)reg.value("missing"), Error);
  EXPECT_THROW((void)reg.value("noc.latency"), Error);  // not scalar
}

TEST(MetricsRegistry, RejectsDuplicatesAndEmptyNames) {
  MetricsRegistry reg;
  std::uint64_t c = 0;
  reg.add_counter("a", &c);
  EXPECT_THROW(reg.add_counter("a", &c), Error);
  EXPECT_THROW(reg.add_gauge("", [] { return 0.0; }), Error);
}

TEST(MetricsRegistry, ScopePrefixesAndMatch) {
  MetricsRegistry reg;
  std::uint64_t a = 1, b = 2, other = 3;
  {
    const auto s = reg.scope("noc");
    s.counter("packets", &a);
    s.counter("flits", &b);
  }
  reg.add_counter("dram.bytes", &other);

  EXPECT_DOUBLE_EQ(reg.value("noc.packets"), 1.0);
  const auto noc = reg.match("noc.");
  ASSERT_EQ(noc.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(noc[0]->name, "noc.flits");
  EXPECT_EQ(noc[1]->name, "noc.packets");
  EXPECT_EQ(reg.match("").size(), 3u);
  EXPECT_TRUE(reg.match("nope.").empty());
}

TEST(CounterSet, IncrementAndMerge) {
  CounterSet a, b;
  a.inc("x");
  a.inc("x", 4);
  b.inc("x");
  b.inc("y", 2);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 6u);
  EXPECT_EQ(a.get("y"), 2u);
  EXPECT_EQ(a.get("missing"), 0u);
}

TEST(Strings, ToFixed) {
  EXPECT_EQ(to_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(to_fixed(2.0, 0), "2");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(100ull * 1024 * 1024), "100.0 MB");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

TEST(AsciiTable, RendersAlignedRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 23456 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(AsciiTable, RejectsMismatchedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--scale=0.5", "--name=cora", "--verbose",
                        "--count=42"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.has("scale"));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(args.get_string("name", "x"), "cora");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("count", 0), 42);
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Cli, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv), Error);
}

TEST(Cli, UnknownFlagsAreDetected) {
  const char* argv[] = {"prog", "--critpath-oot=x", "--scale=0.5"};
  const CliArgs unchecked(3, argv);
  EXPECT_EQ(unchecked.unknown_flags({"scale", "critpath-out"}),
            std::vector<std::string>{"critpath-oot"});
  EXPECT_TRUE(unchecked.unknown_flags({"scale", "critpath-oot"}).empty());
  // The checking constructor throws, naming the typo and the accepted set.
  try {
    const CliArgs checked(3, argv, {"scale", "critpath-out"});
    FAIL() << "expected Error for unknown flag";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("critpath-oot"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--critpath-out"),
              std::string::npos);
  }
}

TEST(Cli, GetUintValidates) {
  const char* argv[] = {"prog", "--chips=4", "--bad=-1", "--junk=4x",
                        "--big=5000000000"};
  const CliArgs args(5, argv);
  EXPECT_EQ(args.get_uint("chips", 1), 4u);
  EXPECT_EQ(args.get_uint("missing", 7), 7u);
  EXPECT_THROW((void)args.get_uint("bad", 1), Error);   // used to wrap
  EXPECT_THROW((void)args.get_uint("junk", 1), Error);  // trailing garbage
  EXPECT_THROW((void)args.get_uint("big", 1), Error);   // > UINT32_MAX
  EXPECT_THROW((void)args.get_uint("chips", 1, 8, 64), Error);  // below min
}

TEST(Check, ThrowsWithMessage) {
  try {
    AURORA_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

// Restores the process-wide budget cap on scope exit so tests never leak a
// shrunken cap into each other.
struct BudgetCapGuard {
  explicit BudgetCapGuard(unsigned cap) {
    WorkerBudget::instance().set_cap(cap);
  }
  ~BudgetCapGuard() { WorkerBudget::instance().set_cap(0); }
};

TEST(WorkerBudget, GrantsUpToCapAndRebalancesOnRelease) {
  BudgetCapGuard guard(3);
  auto& budget = WorkerBudget::instance();
  const unsigned base = budget.in_use();
  const unsigned first = budget.acquire(2);
  EXPECT_EQ(first, std::min(2u, 3u - std::min(3u, base)));
  const unsigned second = budget.acquire(8);
  EXPECT_LE(base + first + second, 3u);  // never exceeds the cap
  budget.release(first + second);
  EXPECT_EQ(budget.in_use(), base);
}

TEST(WorkerBudget, ExhaustedBudgetGrantsZero) {
  BudgetCapGuard guard(1);
  auto& budget = WorkerBudget::instance();
  const unsigned all = budget.acquire(4);
  EXPECT_LE(all, 1u);
  EXPECT_EQ(budget.acquire(1), 0u);  // nothing left — caller runs inline
  budget.release(all);
}

TEST(ThreadPool, RunCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable across epochs: a second run sees fresh indices.
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, ZeroBudgetDegradesToInlineExecution) {
  BudgetCapGuard guard(1);
  auto& budget = WorkerBudget::instance();
  const unsigned all = budget.acquire(4);  // starve the pool below
  ThreadPool pool(4);
  EXPECT_EQ(pool.helpers(), 0u);
  std::atomic<int> sum{0};
  pool.run(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
  budget.release(all);
}

TEST(ThreadPool, RethrowsFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t i) {
                          if (i == 3) throw Error("boom");
                        }),
               Error);
  // The pool survives an exceptional epoch.
  std::atomic<int> count{0};
  pool.run(4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ParallelFor, MatchesSerialResultAndReleasesBudget) {
  auto& budget = WorkerBudget::instance();
  const unsigned before = budget.in_use();
  std::vector<int> out(64, 0);
  parallel_for(out.size(), 4,
               [&](std::size_t i) { out[i] = static_cast<int>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  EXPECT_EQ(budget.in_use(), before);
}

}  // namespace
}  // namespace aurora
