// Tests for the critical-path profiler: exact latency attribution on
// single-chip and cluster traces, bit-identical reports across scheduler
// and engine modes, what-if re-weighting, truncation handling, and the
// metrics/JSON surfaces.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "profile/critpath.hpp"
#include "sim/trace.hpp"

namespace aurora {
namespace {

graph::Dataset make_test_dataset(VertexId n, EdgeId undirected_edges,
                                 std::uint64_t seed) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec.name = "profile-test";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_erdos_renyi(n, undirected_edges, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.spec.num_directed_edges = ds.graph.num_edges();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

core::AuroraConfig small_config() {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  return cfg;
}

/// One traced single-chip layer run; returns the trace and the metrics.
core::RunMetrics run_chip_layer(const core::AuroraConfig& cfg,
                                const graph::Dataset& ds,
                                sim::Tracer& tracer) {
  core::AuroraAccelerator accel(cfg);
  accel.set_tracer(&tracer);
  return accel.run_layer(ds, gnn::GnnModel::kGcn, {8, 8}, 1);
}

void expect_exact_attribution(const profile::CritPathReport& report) {
  const profile::Attribution& a = report.attribution;
  EXPECT_EQ(a.total(), report.total_cycles);
  EXPECT_EQ(a.dram_hit + a.dram_miss + a.dram_conflict + a.dram_other,
            a.dram_service);
  for (const profile::RunReport& run : report.runs) {
    EXPECT_EQ(run.attribution.total(), run.total_cycles);
  }
}

// ------------------------------------------------------- chip attribution

TEST(CritPath, ChipAttributionSumsToTotal) {
  const graph::Dataset ds = make_test_dataset(60, 150, 11);
  sim::Tracer tracer;
  tracer.enable();
  const core::RunMetrics m = run_chip_layer(small_config(), ds, tracer);

  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].kind, sim::kRunKindChip);
  EXPECT_EQ(report.runs[0].units, m.num_subgraphs);
  EXPECT_EQ(report.total_cycles, m.total_cycles);
  expect_exact_attribution(report);
  // A cycle-accurate GNN layer always exposes its reconfiguration tail.
  EXPECT_EQ(report.attribution.reconfiguration, m.reconfig_cycles);
  EXPECT_EQ(report.attribution.halo_barrier_wait, 0u);
}

TEST(CritPath, MultiRunTraceAggregatesRuns) {
  const graph::Dataset ds = make_test_dataset(50, 120, 13);
  sim::Tracer tracer;
  tracer.enable();
  core::AuroraAccelerator accel(small_config());
  accel.set_tracer(&tracer);
  const core::RunMetrics m0 = accel.run_layer(ds, gnn::GnnModel::kGcn,
                                              {8, 8}, 0);
  const core::RunMetrics m1 = accel.run_layer(ds, gnn::GnnModel::kGin,
                                              {8, 4}, 1);

  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer);
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[0].total_cycles, m0.total_cycles);
  EXPECT_EQ(report.runs[1].total_cycles, m1.total_cycles);
  EXPECT_EQ(report.total_cycles, m0.total_cycles + m1.total_cycles);
  expect_exact_attribution(report);
}

TEST(CritPath, LockstepAndFastForwardReportsIdentical) {
  const graph::Dataset ds = make_test_dataset(60, 150, 17);
  const auto report_json = [&](bool fast_forward) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    sim::Tracer tracer;
    tracer.enable();
    (void)run_chip_layer(cfg, ds, tracer);
    profile::AnalyzeOptions opts;
    opts.scenarios = profile::default_what_if_scenarios();
    return profile::critpath_report_json(
        profile::analyze_critical_path(tracer, opts));
  };
  EXPECT_EQ(report_json(false), report_json(true));
}

// ---------------------------------------------------- cluster attribution

TEST(CritPath, ClusterAttributionSumsToTotal) {
  const graph::Dataset ds = make_test_dataset(50, 120, 19);
  cluster::ClusterParams params;
  params.num_chips = 3;
  cluster::ClusterEngine engine(small_config(), params);
  sim::Tracer tracer;
  tracer.enable();
  engine.set_tracer(&tracer);
  const cluster::ClusterRunMetrics cm =
      engine.run(ds, core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8));

  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].kind, sim::kRunKindCluster);
  EXPECT_EQ(report.runs[0].units, 3u);
  EXPECT_LT(report.runs[0].bottleneck_chip, 3u);
  EXPECT_EQ(report.total_cycles, cm.total_cycles);
  expect_exact_attribution(report);
}

TEST(CritPath, ClusterReportsIdenticalAcrossEngineModes) {
  const graph::Dataset ds = make_test_dataset(50, 120, 23);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8);
  const auto report_json = [&](bool parallel, bool fast_forward) {
    core::AuroraConfig cfg = small_config();
    cfg.fast_forward = fast_forward;
    cluster::ClusterParams params;
    params.num_chips = 3;
    params.parallel = parallel;
    cluster::ClusterEngine engine(cfg, params);
    sim::Tracer tracer;
    tracer.enable();
    engine.set_tracer(&tracer);
    (void)engine.run(ds, job);
    profile::AnalyzeOptions opts;
    opts.scenarios = profile::default_what_if_scenarios();
    return profile::critpath_report_json(
        profile::analyze_critical_path(tracer, opts));
  };
  const std::string reference = report_json(false, false);
  EXPECT_EQ(reference, report_json(false, true));
  EXPECT_EQ(reference, report_json(true, false));
  EXPECT_EQ(reference, report_json(true, true));
}

// ------------------------------------------------------------ what-if

TEST(CritPath, IdentityWhatIfReproducesTotal) {
  const graph::Dataset ds = make_test_dataset(60, 150, 29);
  sim::Tracer tracer;
  tracer.enable();
  (void)run_chip_layer(small_config(), ds, tracer);

  profile::AnalyzeOptions opts;
  opts.scenarios.push_back(profile::WhatIfScenario{});  // all factors 1.0
  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer, opts);
  ASSERT_EQ(report.what_if.size(), 1u);
  EXPECT_EQ(report.what_if[0].total_cycles, report.total_cycles);
  EXPECT_DOUBLE_EQ(report.what_if[0].speedup, 1.0);
}

TEST(CritPath, UpgradesNeverSlowTheRunDown) {
  const graph::Dataset ds = make_test_dataset(50, 120, 31);
  cluster::ClusterParams params;
  params.num_chips = 2;
  cluster::ClusterEngine engine(small_config(), params);
  sim::Tracer tracer;
  tracer.enable();
  engine.set_tracer(&tracer);
  (void)engine.run(ds,
                   core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8));

  profile::AnalyzeOptions opts;
  opts.scenarios = profile::default_what_if_scenarios();
  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer, opts);
  ASSERT_EQ(report.what_if.size(), opts.scenarios.size());
  for (const profile::WhatIfOutcome& o : report.what_if) {
    EXPECT_LE(o.total_cycles, report.total_cycles) << o.scenario;
    EXPECT_GE(o.speedup, 1.0) << o.scenario;
  }
}

TEST(CritPath, WhatIfParsing) {
  const profile::WhatIfScenario s =
      profile::parse_what_if("link_bw=2x,dram_latency=0.5x");
  EXPECT_EQ(s.label, "link_bw=2x,dram_latency=0.5x");
  EXPECT_DOUBLE_EQ(s.link_bw, 2.0);
  EXPECT_DOUBLE_EQ(s.dram_latency, 0.5);
  EXPECT_DOUBLE_EQ(s.pe_throughput, 1.0);

  const auto list =
      profile::parse_what_if_list("noc_bw=4x;pe_throughput=1.5x");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list[0].noc_bw, 4.0);
  EXPECT_DOUBLE_EQ(list[1].pe_throughput, 1.5);

  EXPECT_THROW((void)profile::parse_what_if("warp_drive=2x"), Error);
  EXPECT_THROW((void)profile::parse_what_if("link_bw=banana"), Error);
  EXPECT_THROW((void)profile::parse_what_if("link_bw=-1x"), Error);
  EXPECT_THROW((void)profile::parse_what_if("link_bw"), Error);
}

// -------------------------------------------------------- truncation

TEST(CritPath, TruncatedTraceRefusedUnlessAllowed) {
  const graph::Dataset ds = make_test_dataset(60, 150, 37);
  sim::Tracer tracer;
  tracer.enable();
  tracer.set_capacity(64);  // force ring-buffer eviction
  (void)run_chip_layer(small_config(), ds, tracer);
  ASSERT_GT(tracer.dropped(), 0u);

  EXPECT_THROW((void)profile::analyze_critical_path(tracer), Error);

  profile::AnalyzeOptions opts;
  opts.allow_truncated = true;
  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer, opts);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.dropped_records, tracer.dropped());
  // The surviving suffix held no complete run, so nothing was attributed.
  EXPECT_TRUE(report.runs.empty());
}

TEST(CritPath, TraceEndingMidRunRefusedUnlessAllowed) {
  sim::Tracer tracer;
  tracer.enable();
  tracer.record(0, sim::TraceEvent::kRunBegin, sim::kRunKindChip, 1);
  tracer.record(0, sim::TraceEvent::kTileStart, 0, 4);
  EXPECT_THROW((void)profile::analyze_critical_path(tracer), Error);

  profile::AnalyzeOptions opts;
  opts.allow_truncated = true;
  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer, opts);
  EXPECT_TRUE(report.truncated);
  EXPECT_TRUE(report.runs.empty());
}

TEST(CritPath, EmptyTraceYieldsEmptyReport) {
  sim::Tracer tracer;
  tracer.enable();
  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer);
  EXPECT_FALSE(report.truncated);
  EXPECT_TRUE(report.runs.empty());
  EXPECT_EQ(report.total_cycles, 0u);
  EXPECT_EQ(report.attribution.total(), 0u);
}

// ------------------------------------------------------ report surfaces

TEST(CritPath, RegisterMetricsPublishesCritpathEntries) {
  const graph::Dataset ds = make_test_dataset(60, 150, 41);
  sim::Tracer tracer;
  tracer.enable();
  (void)run_chip_layer(small_config(), ds, tracer);
  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer);

  MetricsRegistry registry;
  profile::register_critpath_metrics(registry, report);
  EXPECT_EQ(registry.value("profile.critpath.total_cycles"),
            static_cast<double>(report.total_cycles));
  EXPECT_EQ(registry.value("profile.critpath.runs"), 1.0);
  EXPECT_EQ(registry.value("profile.critpath.pe_compute_cycles"),
            static_cast<double>(report.attribution.pe_compute));
  EXPECT_EQ(registry.value("profile.critpath.dram_service_cycles"),
            static_cast<double>(report.attribution.dram_service));
  EXPECT_EQ(registry.value("trace.dropped_records"), 0.0);

  CounterSet counters;
  profile::export_critpath_counters(report, counters);
  EXPECT_EQ(counters.get("profile.critpath.total_cycles"),
            report.total_cycles);
  EXPECT_EQ(counters.get("profile.critpath.halo_barrier_wait_cycles"),
            report.attribution.halo_barrier_wait);
}

TEST(CritPath, JsonAndTableAreWellFormed) {
  const graph::Dataset ds = make_test_dataset(50, 120, 43);
  sim::Tracer tracer;
  tracer.enable();
  (void)run_chip_layer(small_config(), ds, tracer);
  profile::AnalyzeOptions opts;
  opts.scenarios = profile::default_what_if_scenarios();
  const profile::CritPathReport report =
      profile::analyze_critical_path(tracer, opts);

  const std::string json = profile::critpath_report_json(report);
  EXPECT_NE(json.find("\"schema\":\"aurora.critpath.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"attribution\""), std::string::npos);
  EXPECT_NE(json.find("\"what_if\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const std::string table = profile::format_attribution_table(report);
  EXPECT_NE(table.find("pe-compute"), std::string::npos);
  EXPECT_NE(table.find("what-if upgrade ranking"), std::string::npos);
}

}  // namespace
}  // namespace aurora
