// Tests for the open-loop serving subsystem: seed-deterministic arrival
// processes, admission/shed accounting, EDF-with-fairness queue ordering,
// dynamic-batching bit-identity, closed-loop equivalence with the
// single-chip scheduler, and serial vs parallel-sim determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/report.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "serving/arrival.hpp"
#include "serving/request_queue.hpp"
#include "serving/serving_engine.hpp"

namespace aurora {
namespace {

graph::Dataset make_test_dataset(VertexId n, EdgeId undirected_edges,
                                 std::uint64_t seed) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec.name = "serving-test";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_erdos_renyi(n, undirected_edges, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.spec.num_directed_edges = ds.graph.num_edges();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

core::AuroraConfig small_config() {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  return cfg;
}

std::vector<serving::ModelMixEntry> small_mix(
    const graph::DatasetSpec& spec) {
  return {
      {core::GnnJob::two_layer(gnn::GnnModel::kGcn, spec, 8), "gcn", 1.0, 0},
      {core::GnnJob::two_layer(gnn::GnnModel::kAgnn, spec, 8), "agnn", 1.0,
       0},
  };
}

std::vector<Cycle> arrival_stream(serving::ArrivalKind kind,
                                  std::uint64_t seed, std::size_t n) {
  serving::ArrivalParams params;
  params.kind = kind;
  params.rate_per_mcycle = 200.0;
  serving::ArrivalProcess process(params, seed);
  std::vector<Cycle> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(process.next());
  return out;
}

TEST(Arrival, SeedDeterministicAndMonotonic) {
  for (const serving::ArrivalKind kind :
       {serving::ArrivalKind::kPoisson, serving::ArrivalKind::kBursty,
        serving::ArrivalKind::kDiurnal}) {
    const std::vector<Cycle> a = arrival_stream(kind, 42, 200);
    const std::vector<Cycle> b = arrival_stream(kind, 42, 200);
    EXPECT_EQ(a, b) << serving::arrival_kind_name(kind);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()))
        << serving::arrival_kind_name(kind);
    const std::vector<Cycle> c = arrival_stream(kind, 43, 200);
    EXPECT_NE(a, c) << serving::arrival_kind_name(kind);
  }
}

TEST(Arrival, MeanRateIsApproximatelyHonored) {
  // 2000 arrivals at 200/Mcycle should span about 10 Mcycles; all three
  // processes share the same long-run mean by construction.
  for (const serving::ArrivalKind kind :
       {serving::ArrivalKind::kPoisson, serving::ArrivalKind::kBursty,
        serving::ArrivalKind::kDiurnal}) {
    const std::vector<Cycle> a = arrival_stream(kind, 7, 2000);
    const double span_mcycles = static_cast<double>(a.back()) / 1e6;
    EXPECT_GT(span_mcycles, 5.0) << serving::arrival_kind_name(kind);
    EXPECT_LT(span_mcycles, 20.0) << serving::arrival_kind_name(kind);
  }
}

TEST(Arrival, KindNamesRoundTrip) {
  for (const serving::ArrivalKind kind :
       {serving::ArrivalKind::kPoisson, serving::ArrivalKind::kBursty,
        serving::ArrivalKind::kDiurnal}) {
    const auto parsed =
        serving::arrival_kind_by_name(serving::arrival_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(serving::arrival_kind_by_name("sawtooth").has_value());
}

serving::ServingRequest plain_request(std::uint64_t id, Cycle arrival,
                                      Cycle deadline,
                                      std::uint32_t tenant = 0,
                                      std::uint32_t priority = 0) {
  serving::ServingRequest r;
  r.id = id;
  r.tenant = tenant;
  r.priority = priority;
  r.arrival = arrival;
  r.deadline = deadline;
  r.compat_key = "k";
  return r;
}

TEST(RequestQueue, ShedsBeyondDepthCapAndKeepsAccounting) {
  serving::RequestQueue queue(2);
  EXPECT_TRUE(queue.admit(plain_request(0, 0, 100)));
  EXPECT_TRUE(queue.admit(plain_request(1, 1, 100)));
  EXPECT_FALSE(queue.admit(plain_request(2, 2, 100)));
  EXPECT_FALSE(queue.admit(plain_request(3, 3, 100)));
  EXPECT_EQ(queue.admitted(), 2u);
  EXPECT_EQ(queue.shed(), 2u);
  EXPECT_EQ(queue.admitted() + queue.shed(), 4u);
  // Freeing a slot re-opens admission.
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.admit(plain_request(4, 4, 100)));
}

TEST(RequestQueue, PopsEarliestDeadlineFirstUnderContention) {
  serving::RequestQueue queue(0);
  ASSERT_TRUE(queue.admit(plain_request(0, 0, 900)));
  ASSERT_TRUE(queue.admit(plain_request(1, 1, 300)));
  ASSERT_TRUE(queue.admit(plain_request(2, 2, serving::kNoDeadline)));
  ASSERT_TRUE(queue.admit(plain_request(3, 3, 500)));
  std::vector<std::uint64_t> order;
  while (auto r = queue.pop()) order.push_back(r->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 0, 2}));
}

TEST(RequestQueue, PriorityClassesDominateDeadlines) {
  serving::RequestQueue queue(0);
  // Urgent class (priority 0) beats a looser deadline in class 1.
  ASSERT_TRUE(queue.admit(plain_request(0, 0, 100, /*tenant=*/0,
                                        /*priority=*/1)));
  ASSERT_TRUE(queue.admit(plain_request(1, 1, 5000, /*tenant=*/0,
                                        /*priority=*/0)));
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1u);
}

TEST(RequestQueue, BalancesTenantsWithinAClass) {
  serving::RequestQueue queue(0);
  // Tenant 0 floods the queue with earlier deadlines; tenant 1 has one
  // request. After tenant 0 is served once, fairness must pick tenant 1
  // even though its deadline is later.
  ASSERT_TRUE(queue.admit(plain_request(0, 0, 100, /*tenant=*/0)));
  ASSERT_TRUE(queue.admit(plain_request(1, 1, 200, /*tenant=*/0)));
  ASSERT_TRUE(queue.admit(plain_request(2, 2, 900, /*tenant=*/1)));
  std::vector<std::uint64_t> order;
  while (auto r = queue.pop()) order.push_back(r->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 2, 1}));
}

TEST(RequestQueue, BatchCollectsCompatibleFollowersInEdfOrder) {
  serving::RequestQueue queue(0);
  auto a = plain_request(0, 0, 100);
  auto b = plain_request(1, 1, 900);
  auto c = plain_request(2, 2, 400);
  auto d = plain_request(3, 3, 200);
  d.compat_key = "other";
  ASSERT_TRUE(queue.admit(a));
  ASSERT_TRUE(queue.admit(b));
  ASSERT_TRUE(queue.admit(c));
  ASSERT_TRUE(queue.admit(d));
  const auto batch = queue.pop_batch(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0u);  // head by EDF
  EXPECT_EQ(batch[1].id, 2u);  // earliest compatible deadline
  EXPECT_EQ(batch[2].id, 1u);
  EXPECT_EQ(queue.size(), 1u);  // the incompatible request stays queued
}

serving::ServingParams closed_loop_params(std::uint32_t max_batch = 1) {
  serving::ServingParams params;
  params.queue_depth = 0;  // unbounded: closed loops never shed
  params.max_batch = max_batch;
  return params;
}

std::vector<serving::ServingRequest> same_model_requests(
    const graph::DatasetSpec& spec, std::size_t n) {
  std::vector<serving::ServingRequest> requests;
  for (std::size_t i = 0; i < n; ++i) {
    serving::ServingRequest r;
    r.id = i;
    r.job = core::GnnJob::two_layer(gnn::GnnModel::kGcn, spec, 8);
    r.label = "gcn #" + std::to_string(i);
    requests.push_back(std::move(r));
  }
  return requests;
}

TEST(ServingEngine, MatchesSchedulerRunOnClosedLoopTrace) {
  const graph::Dataset ds = make_test_dataset(40, 90, 51);
  const core::AuroraConfig config = small_config();

  // The reference: the single-chip scheduler replaying a mixed queue.
  std::vector<core::ScheduledRequest> queue = {
      {core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8), "gcn"},
      {core::GnnJob::two_layer(gnn::GnnModel::kAgnn, ds.spec, 8), "agnn"},
      {core::GnnJob::two_layer(gnn::GnnModel::kGin, ds.spec, 8), "gin"},
      {core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, 8), "gcn2"},
  };
  core::AuroraAccelerator accelerator(config);
  core::Scheduler scheduler(accelerator);
  const core::ScheduleResult reference = scheduler.run(ds, queue);

  // The serving engine on the same trace: all arrivals at cycle 0, no
  // batching, one chip.
  std::vector<serving::ServingRequest> requests;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    serving::ServingRequest r;
    r.id = i;
    r.job = queue[i].job;
    r.label = queue[i].label;
    requests.push_back(std::move(r));
  }
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 1;
  serving::ServingEngine engine(config, cluster_params,
                                closed_loop_params());
  const serving::ServingReport report = engine.replay(ds, requests);

  ASSERT_EQ(report.served.size(), reference.outcomes.size());
  EXPECT_EQ(report.shed, 0u);
  for (std::size_t i = 0; i < report.served.size(); ++i) {
    const auto& served = report.served[i];
    const auto& ref = reference.outcomes[i];
    EXPECT_EQ(served.label, ref.label);
    EXPECT_EQ(served.start, ref.start_cycle);
    EXPECT_EQ(served.finish, ref.finish_cycle);
    EXPECT_EQ(served.overlap_hidden, ref.overlap_hidden);
    const auto diff = core::diff_run_metrics(served.metrics, ref.metrics);
    EXPECT_TRUE(diff.empty())
        << served.label << ": " << (diff.empty() ? "" : diff.front());
  }
  EXPECT_EQ(report.horizon, reference.makespan);
  EXPECT_EQ(report.overlap_savings, reference.overlap_savings);
}

TEST(ServingEngine, BatchingSavesExactlyTheSkippedReconfigurations) {
  const graph::Dataset ds = make_test_dataset(40, 90, 51);
  const core::AuroraConfig config = small_config();
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 1;

  serving::ServingEngine serial(config, cluster_params,
                                closed_loop_params(/*max_batch=*/1));
  const serving::ServingReport without =
      serial.replay(ds, same_model_requests(ds.spec, 3));

  serving::ServingEngine batched(config, cluster_params,
                                 closed_loop_params(/*max_batch=*/3));
  const serving::ServingReport with =
      batched.replay(ds, same_model_requests(ds.spec, 3));

  ASSERT_EQ(without.served.size(), 3u);
  ASSERT_EQ(with.served.size(), 3u);
  EXPECT_EQ(without.reconfig_savings, 0u);
  EXPECT_GT(with.reconfig_savings, 0u);

  // Bit-identity: batching only removes the followers' exposed
  // reconfiguration spans; every start/finish shifts by exactly the
  // cumulative savings and nothing else changes.
  Cycle cumulative_saved = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& b = with.served[i];
    const auto& s = without.served[i];
    EXPECT_EQ(b.start, s.start - cumulative_saved) << i;
    cumulative_saved += b.reconfig_saved;
    EXPECT_EQ(b.finish, s.finish - cumulative_saved) << i;
    EXPECT_EQ(b.metrics.compute_cycles, s.metrics.compute_cycles) << i;
    EXPECT_EQ(b.metrics.dram_cycles, s.metrics.dram_cycles) << i;
    EXPECT_EQ(b.metrics.reconfig_cycles + b.reconfig_saved,
              s.metrics.reconfig_cycles)
        << i;
  }
  EXPECT_EQ(with.horizon, without.horizon - with.reconfig_savings);
}

TEST(ServingEngine, OpenLoopRunIsSeedDeterministic) {
  const graph::Dataset ds = make_test_dataset(40, 90, 51);
  const core::AuroraConfig config = small_config();
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 2;

  serving::ServingParams params;
  params.seed = 11;
  params.num_requests = 12;
  params.queue_depth = 4;
  params.arrival.rate_per_mcycle = 300.0;
  params.slo_cycles = 60000;
  params.num_tenants = 2;

  serving::ServingEngine a(config, cluster_params, params);
  serving::ServingEngine b(config, cluster_params, params);
  const auto mix = small_mix(ds.spec);
  const serving::ServingReport ra = a.run(ds, mix);
  const serving::ServingReport rb = b.run(ds, mix);
  EXPECT_EQ(serving::serving_report_json(ra),
            serving::serving_report_json(rb));

  params.seed = 12;
  serving::ServingEngine c(config, cluster_params, params);
  const serving::ServingReport rc = c.run(ds, mix);
  EXPECT_NE(serving::serving_report_json(ra),
            serving::serving_report_json(rc));
}

TEST(ServingEngine, ShedAccountingCoversEveryGeneratedRequest) {
  const graph::Dataset ds = make_test_dataset(40, 90, 51);
  const core::AuroraConfig config = small_config();
  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = 1;

  // Overload: a tiny queue and an arrival rate far above service capacity,
  // so a healthy fraction of requests must shed.
  serving::ServingParams params;
  params.seed = 3;
  params.num_requests = 20;
  params.queue_depth = 2;
  params.arrival.rate_per_mcycle = 5000.0;

  serving::ServingEngine engine(config, cluster_params, params);
  const serving::ServingReport report = engine.run(ds, small_mix(ds.spec));
  EXPECT_EQ(report.generated, 20u);
  EXPECT_EQ(report.admitted + report.shed, report.generated);
  EXPECT_GT(report.shed, 0u);
  EXPECT_EQ(report.served.size(), report.admitted);
  EXPECT_GT(report.shed_rate(), 0.0);
  // The counters mirror the report scalars.
  const CounterSet counters = report.counters();
  EXPECT_EQ(counters.get("serving.generated"), report.generated);
  EXPECT_EQ(counters.get("serving.shed"), report.shed);
}

TEST(ServingEngine, SerialAndParallelSimAgreeBitForBit) {
  const graph::Dataset ds = make_test_dataset(60, 150, 9);
  const core::AuroraConfig config = small_config();

  serving::ServingParams params;
  params.seed = 5;
  params.num_requests = 6;
  params.queue_depth = 8;
  params.arrival.rate_per_mcycle = 100.0;
  params.slo_cycles = 500000;
  params.mode = cluster::DispatchMode::kShardParallel;

  cluster::ClusterParams serial_params;
  serial_params.num_chips = 2;
  serial_params.parallel = false;
  serving::ServingEngine serial(config, serial_params, params);
  const serving::ServingReport serial_report =
      serial.run(ds, small_mix(ds.spec));

  cluster::ClusterParams parallel_params;
  parallel_params.num_chips = 2;
  parallel_params.parallel = true;
  serving::ServingEngine parallel(config, parallel_params, params);
  const serving::ServingReport parallel_report =
      parallel.run(ds, small_mix(ds.spec));

  EXPECT_EQ(serving::serving_report_json(serial_report),
            serving::serving_report_json(parallel_report));
}

TEST(ServingReport, JsonCarriesSchemaAndExactPercentiles) {
  serving::ServingReport report;
  report.generated = 4;
  report.admitted = 4;
  report.frequency_mhz = 1000.0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    serving::ServedRequest r;
    r.id = i;
    r.label = "r" + std::to_string(i);
    r.arrival = 0;
    r.start = 10 * i;
    r.finish = 10 * i + 100 * (i + 1);
    report.served.push_back(r);
    report.horizon = std::max(report.horizon, r.finish);
  }
  // Latencies are 100+0, 200+10, 300+20, 400+30 cycles; nearest-rank p50 is
  // the 2nd sample.
  EXPECT_EQ(report.latency_percentile(0.50), 210.0);
  EXPECT_EQ(report.latency_percentile(1.0), 430.0);
  const std::string json = serving::serving_report_json(report);
  EXPECT_NE(json.find("\"schema\": \"aurora.serving.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"latency_p50_cycles\": 210"), std::string::npos);
  EXPECT_NE(json.find("\"requests\": ["), std::string::npos);
}

}  // namespace
}  // namespace aurora
