// Randomized property sweeps across modules: partition optimality over
// random inputs, NoC conservation over parameter grids, dataset statistics
// against their published specs, and PE utilization reporting.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "noc/network.hpp"
#include "partition/partition.hpp"
#include "sim/simulator.hpp"

namespace aurora {
namespace {

// ------------------------------------------------ partition: random inputs

class PartitionRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionRandom, ChosenSplitIsArgmin) {
  Rng rng(GetParam());
  partition::PartitionInput in;
  in.ops_edge_update = rng.next_below(1'000'000);
  in.ops_aggregation = 1 + rng.next_below(1'000'000);
  in.ops_vertex_update = 1 + rng.next_below(1'000'000);
  in.edge_feature_dim = static_cast<std::uint32_t>(1 + rng.next_below(512));
  in.num_edges = 1 + rng.next_below(100'000);
  in.total_pes = static_cast<std::uint32_t>(2 + rng.next_below(1023));
  in.flops_per_pe = 1.0 + rng.next_double(0, 31);

  const auto r = partition::partition(in);
  ASSERT_EQ(r.a + r.b, in.total_pes);
  double best = -1.0;
  for (std::uint32_t a = 1; a < in.total_pes; ++a) {
    const double diff = std::abs(partition::time_sub_a(in, a) -
                                 partition::time_sub_b(in, in.total_pes - a));
    if (best < 0.0 || diff < best) best = diff;
  }
  EXPECT_NEAR(r.diff, best, 1e-9 * std::max(1.0, best));
  // Stage times are positive and consistent with the reported split.
  EXPECT_GT(r.t_a, 0.0);
  EXPECT_GT(r.t_b, 0.0);
  EXPECT_DOUBLE_EQ(r.t_a, partition::time_sub_a(in, r.a));
  EXPECT_DOUBLE_EQ(r.t_b, partition::time_sub_b(in, r.b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

// -------------------------------------------- NoC: conservation over a grid

using NocGridParam = std::tuple<std::uint32_t /*k*/, std::uint32_t /*vcs*/,
                                std::uint32_t /*buffer*/>;

class NocGrid : public ::testing::TestWithParam<NocGridParam> {};

TEST_P(NocGrid, EveryPacketDeliveredOnceUnderRandomTraffic) {
  const auto [k, vcs, buffer] = GetParam();
  noc::NocParams p;
  p.k = k;
  p.num_vcs = vcs;
  p.input_buffer_flits = buffer;
  noc::Network net(p);
  sim::Simulator s;
  s.add(&net);

  std::uint64_t delivered = 0;
  Bytes delivered_bytes = 0;
  net.set_delivery_callback([&](const noc::Packet& pkt, Cycle) {
    ++delivered;
    delivered_bytes += pkt.payload_bytes;
  });

  Rng rng(k * 100 + vcs * 10 + buffer);
  constexpr int kPackets = 300;
  Bytes injected_bytes = 0;
  for (int i = 0; i < kPackets; ++i) {
    const Bytes bytes = 16 + 16 * rng.next_below(20);
    injected_bytes += bytes;
    net.send(static_cast<noc::NodeId>(rng.next_below(k * k)),
             static_cast<noc::NodeId>(rng.next_below(k * k)), bytes, i,
             s.now());
  }
  s.run_until_idle(10'000'000);
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(delivered_bytes, injected_bytes);
  EXPECT_TRUE(net.idle());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NocGrid,
    ::testing::Combine(::testing::Values(4u, 8u), ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(2u, 8u)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_vc" +
             std::to_string(std::get<1>(info.param)) + "_buf" +
             std::to_string(std::get<2>(info.param));
    });

// ------------------------------------ datasets: statistics follow the specs

class DatasetStats : public ::testing::TestWithParam<graph::DatasetId> {};

TEST_P(DatasetStats, ScaledInstancePreservesMeanDegree) {
  const auto& spec = graph::dataset_spec(GetParam());
  const double scale = GetParam() == graph::DatasetId::kReddit ? 0.004 : 0.2;
  const auto ds = graph::make_dataset(GetParam(), scale);
  const double spec_mean = static_cast<double>(spec.num_directed_edges) /
                           static_cast<double>(spec.num_vertices);
  // Mean degree survives scaling within 35 % (density caps can bind for the
  // densest instances).
  EXPECT_GT(ds.degree_stats.mean_degree, 0.5 * spec_mean);
  EXPECT_LT(ds.degree_stats.mean_degree, 1.35 * spec_mean);
}

INSTANTIATE_TEST_SUITE_P(All, DatasetStats,
                         ::testing::ValuesIn(graph::kAllDatasets),
                         [](const auto& info) {
                           return std::string(
                               graph::dataset_name(info.param));
                         });

// ------------------------------------------------- PE utilization reporting

TEST(PeUtilization, ReportedByCycleEngine) {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 8;
  cfg.noc.k = 8;
  core::AuroraAccelerator accel(cfg);
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, 0.05);
  const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn, {32, 8}, 1);
  EXPECT_GT(m.pe_utilization, 0.0);
  EXPECT_LE(m.pe_utilization, 1.0);
  EXPECT_FALSE(m.pe_heatmap.empty());
  EXPECT_EQ(std::count(m.pe_heatmap.begin(), m.pe_heatmap.end(), '\n'), 8);
}


// ------------------------------------------- randomized engine fuzz sweep

using FuzzParam = std::uint64_t;

class EngineFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(EngineFuzz, RandomWorkloadsNeverWedgeTheCycleEngine) {
  Rng rng(GetParam() * 7919 + 13);
  // Random small graph.
  graph::PowerLawParams gp;
  gp.n = static_cast<VertexId>(40 + rng.next_below(160));
  gp.undirected_edges = gp.n + rng.next_below(4 * gp.n);
  gp.alpha = 1.9 + rng.next_double(0, 1.2);
  gp.locality = rng.next_double(0, 0.9);
  graph::Dataset ds;
  ds.graph = graph::generate_power_law(gp, rng);
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  ds.spec.feature_density = 1.0;

  // Random model + layer shape.
  const auto model =
      gnn::kAllModels[rng.next_below(gnn::kAllModels.size())];
  const gnn::LayerConfig layer{
      static_cast<std::uint32_t>(4 + rng.next_below(60)),
      static_cast<std::uint32_t>(2 + rng.next_below(40))};

  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 8;
  cfg.noc.k = 8;
  cfg.ring_size = static_cast<std::uint32_t>(2 + rng.next_below(7));
  core::AuroraAccelerator accel(cfg);
  const auto m = accel.run_layer(ds, model, layer, 1);
  EXPECT_GT(m.total_cycles, 0u);
  EXPECT_GT(m.dram_bytes, 0u);
  EXPECT_EQ(m.partition_a + m.partition_b, 64u);
  EXPECT_GE(m.total_cycles, m.reconfig_cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<FuzzParam>(1, 25));

}  // namespace
}  // namespace aurora
