// Unit tests for the cycle-level DRAM model: timing laws, FR-FCFS behaviour
// and accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "dram/dram.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"

namespace aurora::dram {
namespace {

struct Harness {
  explicit Harness(DramConfig cfg = {}) : dram(cfg) { sim.add(&dram); }

  /// Issue a request now and run to completion; returns completion cycle.
  Cycle run_one(Bytes addr, Bytes bytes, bool write = false) {
    Cycle done = 0;
    DramRequest r;
    r.addr = addr;
    r.bytes = bytes;
    r.is_write = write;
    r.on_complete = [&](Cycle c) { done = c; };
    dram.enqueue(std::move(r), sim.now());
    sim.run_until_idle(1'000'000);
    return done;
  }

  sim::Simulator sim;
  DramModel dram;
};

DramConfig single_channel() {
  DramConfig cfg;
  cfg.num_channels = 1;
  cfg.banks_per_channel = 4;
  return cfg;
}

TEST(Dram, ColdReadLatencyIsActivatePlusCasPlusBurst) {
  Harness h(single_channel());
  const DramTiming& t = h.dram.config().timing;
  const Cycle done = h.run_one(0, 64);
  // Issue happens on the first tick (cycle 0): tRCD + tCL + tBURST.
  EXPECT_EQ(done, t.t_rcd + t.t_cl + t.t_burst);
}

TEST(Dram, RowHitIsFasterThanRowMiss) {
  Harness h(single_channel());
  const Cycle first = h.run_one(0, 64);
  const Cycle start = h.sim.now();
  const Cycle second = h.run_one(64, 64);  // same row, already open
  EXPECT_LT(second - start, first);
  EXPECT_EQ(h.dram.stats().row_hits, 1u);
}

TEST(Dram, RowConflictPaysPrechargePenalty) {
  DramConfig cfg = single_channel();
  cfg.banks_per_channel = 1;  // force both rows onto one bank
  Harness h(cfg);
  h.run_one(0, 64);
  const Cycle start = h.sim.now();
  // Far-away address = different row on the same (only) bank.
  const Cycle conflict = h.run_one(1 << 20, 64);
  const DramTiming& t = h.dram.config().timing;
  EXPECT_EQ(conflict - start, t.t_rp + t.t_rcd + t.t_cl + t.t_burst);
  EXPECT_EQ(h.dram.stats().row_conflicts, 1u);
}

TEST(Dram, LargeRequestSplitsIntoBursts) {
  Harness h(single_channel());
  h.run_one(0, 1024);
  EXPECT_EQ(h.dram.stats().requests, 1u);
  EXPECT_EQ(h.dram.stats().bursts, 1024u / 64);
  EXPECT_EQ(h.dram.stats().bytes_read, 1024u);
}

TEST(Dram, UnalignedRequestCoversAllTouchedBursts) {
  Harness h(single_channel());
  h.run_one(60, 8);  // straddles bursts [0,64) and [64,128)
  EXPECT_EQ(h.dram.stats().bursts, 2u);
}

TEST(Dram, WriteAccounting) {
  Harness h;
  h.run_one(0, 256, /*write=*/true);
  EXPECT_EQ(h.dram.stats().bytes_written, 256u);
  EXPECT_EQ(h.dram.stats().bytes_read, 0u);
}

TEST(Dram, StreamingBandwidthApproachesDataBusLimit) {
  DramConfig cfg = single_channel();
  Harness h(cfg);
  // 128 sequential row-hit bursts: steady state should be limited by the
  // t_burst data-bus occupancy, not by bank timing.
  const Bytes total = 128 * 64;
  const Cycle done = h.run_one(0, total);
  const double cycles_per_burst =
      static_cast<double>(done) / 128.0;
  EXPECT_LT(cycles_per_burst, cfg.timing.t_burst + 1.5);
}

TEST(Dram, MultiChannelDoublesThroughput) {
  DramConfig one = single_channel();
  DramConfig four;
  four.num_channels = 4;
  four.banks_per_channel = 4;
  Harness h1(one), h4(four);
  const Bytes total = 256 * 64;
  const Cycle t1 = h1.run_one(0, total);
  const Cycle t4 = h4.run_one(0, total);
  EXPECT_LT(static_cast<double>(t4), 0.5 * static_cast<double>(t1));
}

TEST(Dram, FrFcfsPrefersRowHitOverOlderConflict) {
  DramConfig cfg = single_channel();
  cfg.banks_per_channel = 1;
  Harness h(cfg);
  // Open row 0 first.
  h.run_one(0, 64);

  // Enqueue a conflicting request (row far away) *then* a row hit.
  Cycle conflict_done = 0, hit_done = 0;
  DramRequest conflict;
  conflict.addr = 1 << 20;
  conflict.bytes = 64;
  conflict.on_complete = [&](Cycle c) { conflict_done = c; };
  DramRequest hit;
  hit.addr = 128;
  hit.bytes = 64;
  hit.on_complete = [&](Cycle c) { hit_done = c; };
  h.dram.enqueue(std::move(conflict), h.sim.now());
  h.dram.enqueue(std::move(hit), h.sim.now());
  h.sim.run_until_idle(1'000'000);
  EXPECT_LT(hit_done, conflict_done);  // younger row hit bypassed the conflict
}

TEST(Dram, LatencyStatsArePopulated) {
  Harness h;
  h.run_one(0, 64);
  h.run_one(4096, 64);
  EXPECT_EQ(h.dram.stats().request_latency.count(), 2u);
  EXPECT_GT(h.dram.stats().request_latency.mean(), 0.0);
}

TEST(Dram, PeakBandwidthFormula) {
  DramConfig cfg;
  cfg.num_channels = 2;
  cfg.burst_bytes = 64;
  cfg.timing.t_burst = 4;
  EXPECT_DOUBLE_EQ(cfg.peak_bytes_per_cycle(), 32.0);
}

TEST(Dram, IdleAfterDrainAndReusable) {
  Harness h;
  EXPECT_TRUE(h.dram.idle());
  h.run_one(0, 512);
  EXPECT_TRUE(h.dram.idle());
  const Cycle before = h.sim.now();
  h.run_one(1 << 16, 64);
  EXPECT_GT(h.sim.now(), before);
}

TEST(Dram, RejectsZeroByteRequest) {
  Harness h;
  DramRequest r;
  r.addr = 0;
  r.bytes = 0;
  EXPECT_THROW(h.dram.enqueue(std::move(r), 0), Error);
}


TEST(Dram, RefreshBlocksChannelPeriodically) {
  DramConfig cfg = single_channel();
  cfg.timing.t_refi = 200;
  cfg.timing.t_rfc = 50;
  Harness with_refresh(cfg);
  cfg.timing.t_refi = 0;  // disabled
  Harness no_refresh(cfg);
  const Bytes total = 256 * 64;  // long enough to straddle refreshes
  const Cycle t_ref = with_refresh.run_one(0, total);
  const Cycle t_free = no_refresh.run_one(0, total);
  EXPECT_GT(t_ref, t_free);
  EXPECT_GT(with_refresh.dram.stats().refreshes, 2u);
  EXPECT_EQ(no_refresh.dram.stats().refreshes, 0u);
}

TEST(Dram, RefreshClosesRowBuffers) {
  DramConfig cfg = single_channel();
  cfg.timing.t_refi = 100;
  cfg.timing.t_rfc = 20;
  Harness h(cfg);
  h.run_one(0, 64);           // opens a row
  h.sim.run_cycles(150);      // ride through a refresh
  const auto misses_before = h.dram.stats().row_misses;
  h.run_one(64, 64);          // same row — but refresh closed it
  EXPECT_EQ(h.dram.stats().row_misses, misses_before + 1);
}

TEST(Dram, IdleChannelHasNoRefreshWakeups) {
  DramConfig cfg = single_channel();
  cfg.timing.t_refi = 200;
  cfg.timing.t_rfc = 20;
  Harness h(cfg);
  // Fully idle channel (empty queue, all rows closed): refresh is a no-op,
  // so there is no event — the scheduler never wakes just to count one.
  EXPECT_EQ(h.dram.next_event_cycle(0), sim::kNoEvent);
  h.run_one(0, 64);  // leaves a row open
  // With a row open, the deadline matters (it closes the row): pinned.
  EXPECT_EQ(h.dram.next_event_cycle(h.sim.now()), 200u);
}

TEST(Dram, RefreshCatchUpCountsEveryMissedInterval) {
  // Regression: an idle channel that resumed work after several missed
  // tREFI deadlines used to count a single refresh and reschedule at
  // now + tREFI, drifting the deadline off the tREFI grid (and off the
  // lockstep schedule). The catch-up must account one refresh per missed
  // deadline and keep the next deadline on the grid.
  DramConfig cfg = single_channel();
  cfg.timing.t_refi = 200;
  cfg.timing.t_rfc = 20;
  Harness h(cfg);
  h.sim.run_cycles(700);  // idle through the deadlines at 200/400/600
  h.run_one(0, 64);
  EXPECT_EQ(h.dram.stats().refreshes, 3u);
  // The grid-alignment law (refresh deadline stays a tREFI multiple) is an
  // invariant; the pre-fix drift to 700 + tREFI violates it.
  sim::InvariantChecker checker;
  checker.watch(&h.dram);
  checker.check_now(h.sim.now());
}

/// Submits a fixed (cycle, request) plan — deterministic external stimulus
/// for scheduler-equivalence runs, with idle gaps the fast-forward mode can
/// jump over.
class ScheduledTraffic final : public sim::Component {
 public:
  ScheduledTraffic(DramModel* dram,
                   std::vector<std::pair<Cycle, DramRequest>> plan)
      : Component("traffic"), dram_(dram), plan_(std::move(plan)) {}

  void tick(Cycle now) override {
    while (next_ < plan_.size() && plan_[next_].first <= now) {
      dram_->enqueue(std::move(plan_[next_].second), now);
      ++next_;
    }
  }
  [[nodiscard]] bool idle() const override { return next_ == plan_.size(); }
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override {
    if (next_ == plan_.size()) return sim::kNoEvent;
    return std::max(now, plan_[next_].first);
  }

 private:
  DramModel* dram_;
  std::vector<std::pair<Cycle, DramRequest>> plan_;
  std::size_t next_ = 0;
};

TEST(Dram, RefreshAccountingMatchesAcrossSchedulerModes) {
  // Bursts of traffic separated by idle gaps longer than tREFI: lockstep
  // ticks through the gaps, fast-forward jumps them (the refresh on a
  // closed-row idle channel is eventless). Every stat — refresh count
  // included — must still match bit for bit.
  DramConfig cfg = single_channel();
  cfg.timing.t_refi = 150;
  cfg.timing.t_rfc = 30;

  struct Outcome {
    std::vector<Cycle> completions;
    DramStats stats;
    Cycle end = 0;
  };
  const auto run = [&](bool fast_forward) {
    sim::Simulator sim;
    sim.set_fast_forward(fast_forward);
    DramModel dram(cfg);
    sim.add(&dram);
    Outcome out;
    std::vector<std::pair<Cycle, DramRequest>> plan;
    Cycle at = 0;
    for (int i = 0; i < 8; ++i) {
      DramRequest r;
      r.addr = (i % 2 == 0) ? static_cast<Bytes>(i) * 64
                            : (1u << 20) + static_cast<Bytes>(i) * 64;
      r.bytes = 128;
      r.is_write = (i % 3 == 0);
      r.on_complete = [&out](Cycle c) { out.completions.push_back(c); };
      plan.emplace_back(at, std::move(r));
      at += (i % 2 == 0) ? 37 : 520;  // gaps straddle several deadlines
    }
    ScheduledTraffic traffic(&dram, std::move(plan));
    sim.add(&traffic);
    sim::InvariantChecker checker;
    checker.watch(&dram);
    sim.run_until_idle(1'000'000);
    checker.check_now(sim.now());
    out.stats = dram.stats();
    out.end = sim.now();
    return out;
  };

  const Outcome lockstep = run(false);
  const Outcome fastfwd = run(true);
  EXPECT_EQ(lockstep.end, fastfwd.end);
  EXPECT_EQ(lockstep.completions, fastfwd.completions);
  EXPECT_EQ(lockstep.stats.refreshes, fastfwd.stats.refreshes);
  EXPECT_GT(lockstep.stats.refreshes, 0u);
  EXPECT_EQ(lockstep.stats.requests, fastfwd.stats.requests);
  EXPECT_EQ(lockstep.stats.bursts, fastfwd.stats.bursts);
  EXPECT_EQ(lockstep.stats.row_hits, fastfwd.stats.row_hits);
  EXPECT_EQ(lockstep.stats.row_misses, fastfwd.stats.row_misses);
  EXPECT_EQ(lockstep.stats.row_conflicts, fastfwd.stats.row_conflicts);
  EXPECT_EQ(lockstep.stats.bus_turnarounds, fastfwd.stats.bus_turnarounds);
  EXPECT_EQ(lockstep.stats.bytes_read, fastfwd.stats.bytes_read);
  EXPECT_EQ(lockstep.stats.bytes_written, fastfwd.stats.bytes_written);
  EXPECT_EQ(lockstep.stats.request_latency.count(),
            fastfwd.stats.request_latency.count());
  EXPECT_EQ(lockstep.stats.request_latency.sum(),
            fastfwd.stats.request_latency.sum());
}

TEST(Dram, RefreshOverheadIsBounded) {
  // The steady-state throughput loss is ~t_rfc / t_refi.
  DramConfig cfg = single_channel();
  cfg.timing.t_refi = 500;
  cfg.timing.t_rfc = 50;
  Harness h(cfg);
  cfg.timing.t_refi = 0;
  Harness base(cfg);
  const Bytes total = 1024 * 64;
  const double slowdown = static_cast<double>(h.run_one(0, total)) /
                          static_cast<double>(base.run_one(0, total));
  EXPECT_LT(slowdown, 1.25);  // 10 % duty cycle + scheduling slack
}


TEST(Dram, BusTurnaroundPenalisesMixedReadWrite) {
  DramConfig cfg = single_channel();
  cfg.timing.t_refi = 0;
  Harness h(cfg);
  // Alternate reads and writes on the same row: every burst flips the bus.
  for (int i = 0; i < 32; ++i) {
    Cycle done = 0;
    DramRequest r;
    r.addr = static_cast<Bytes>(i) * 64;
    r.bytes = 64;
    r.is_write = (i % 2 == 1);
    r.on_complete = [&](Cycle c) { done = c; };
    h.dram.enqueue(std::move(r), h.sim.now());
    h.sim.run_until_idle(100000);
    (void)done;
  }
  EXPECT_GT(h.dram.stats().bus_turnarounds, 20u);

  // Same traffic, reads only: no turnarounds.
  Harness reads(cfg);
  for (int i = 0; i < 32; ++i) {
    reads.run_one(static_cast<Bytes>(i) * 64, 64, /*write=*/false);
  }
  EXPECT_EQ(reads.dram.stats().bus_turnarounds, 0u);
}

}  // namespace
}  // namespace aurora::dram
