// Tests for the dynamic-graph workload subsystem: DynamicGraph overlay
// semantics and compaction bit-identity, seed-deterministic neighbor
// sampling, the interleaved update/query workload generator, churn-aware
// shard maintenance, and end-to-end dynamic serving determinism across
// lockstep/fast-forward and serial/parallel cluster simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/shard_churn.hpp"
#include "common/rng.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "serving/serving_engine.hpp"
#include "sim/trace.hpp"
#include "workload/dynamic_graph.hpp"
#include "workload/sampler.hpp"
#include "workload/workload_gen.hpp"

namespace aurora {
namespace {

graph::Dataset make_test_dataset(VertexId n, EdgeId undirected_edges,
                                 std::uint64_t seed) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec.name = "workload-test";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_erdos_renyi(n, undirected_edges, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.spec.num_directed_edges = ds.graph.num_edges();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

core::AuroraConfig small_config() {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  return cfg;
}

/// No-auto-compaction policy, so tests control compaction explicitly.
workload::CompactionPolicy manual_compaction() {
  workload::CompactionPolicy policy;
  policy.threshold_fraction = 0.0;
  return policy;
}

void expect_same_csr(const graph::CsrGraph& a, const graph::CsrGraph& b) {
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_EQ(a.col_idx(), b.col_idx());
}

// ------------------------------------------------------------ DynamicGraph

TEST(DynamicGraph, EdgeMutatorSemantics) {
  graph::CsrBuilder b(4);
  b.add_undirected_edge(0, 1);
  workload::DynamicGraph dyn(std::move(b).build(), manual_compaction());

  EXPECT_EQ(dyn.num_edges(), 2u);
  EXPECT_TRUE(dyn.has_edge(0, 1));
  EXPECT_FALSE(dyn.add_edge(0, 1));   // duplicate of a base edge
  EXPECT_FALSE(dyn.add_edge(2, 2));   // self loop
  EXPECT_TRUE(dyn.add_edge(2, 3));    // directed overlay insert
  EXPECT_TRUE(dyn.has_edge(2, 3));
  EXPECT_FALSE(dyn.has_edge(3, 2));
  EXPECT_FALSE(dyn.add_edge(2, 3));   // duplicate of an overlay edge
  EXPECT_EQ(dyn.num_edges(), 3u);
  EXPECT_EQ(dyn.degree(2), 1u);

  EXPECT_TRUE(dyn.remove_edge(0, 1));  // base removal
  EXPECT_FALSE(dyn.remove_edge(0, 1));
  EXPECT_FALSE(dyn.has_edge(0, 1));
  EXPECT_TRUE(dyn.has_edge(1, 0));     // directions are independent
  EXPECT_TRUE(dyn.remove_edge(2, 3));  // overlay add/remove cancels
  EXPECT_EQ(dyn.num_edges(), 1u);
  EXPECT_TRUE(dyn.add_edge(0, 1));     // base remove/add cancels
  EXPECT_EQ(dyn.overlay_edges(), 0u);  // everything cancelled out
}

TEST(DynamicGraph, NeighborsMergeBaseAndOverlay) {
  graph::CsrBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 3);
  workload::DynamicGraph dyn(std::move(b).build(), manual_compaction());
  ASSERT_TRUE(dyn.add_edge(0, 2));
  ASSERT_TRUE(dyn.add_edge(0, 4));
  ASSERT_TRUE(dyn.remove_edge(0, 3));

  std::vector<VertexId> nbrs;
  dyn.append_neighbors(0, nbrs);
  EXPECT_EQ(nbrs, (std::vector<VertexId>{1, 2, 4}));
  EXPECT_EQ(dyn.degree(0), 3u);
}

TEST(DynamicGraph, VertexAddAndRemove) {
  graph::CsrBuilder b(3);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  workload::DynamicGraph dyn(std::move(b).build(), manual_compaction());

  const VertexId v = dyn.add_vertex();
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(dyn.num_vertices(), 4u);
  EXPECT_EQ(dyn.degree(v), 0u);
  EXPECT_TRUE(dyn.add_undirected_edge(v, 0));
  EXPECT_EQ(dyn.num_edges(), 6u);

  // Removing vertex 1 drops both directions of (0,1) and (1,2); the id
  // stays valid with degree zero.
  EXPECT_EQ(dyn.remove_vertex(1), 4u);
  EXPECT_EQ(dyn.num_vertices(), 4u);
  EXPECT_EQ(dyn.degree(1), 0u);
  EXPECT_EQ(dyn.num_edges(), 2u);
  EXPECT_FALSE(dyn.has_edge(0, 1));
  EXPECT_FALSE(dyn.has_edge(2, 1));
  EXPECT_TRUE(dyn.has_edge(3, 0));
}

TEST(DynamicGraph, CompactionBitIdenticalToRebuild) {
  // The acceptance invariant: under a seed-reproducible random
  // insert/delete stream, compact() (the incremental per-vertex merge)
  // produces exactly the CSR a from-scratch CsrBuilder rebuild does.
  Rng rng(2024);
  graph::CsrGraph base = graph::generate_erdos_renyi(60, 150, rng);
  workload::DynamicGraph dyn(std::move(base), manual_compaction());

  for (int step = 0; step < 500; ++step) {
    const VertexId n = dyn.num_vertices();
    const double roll = rng.next_double();
    if (roll < 0.05) {
      (void)dyn.add_vertex();
    } else if (roll < 0.10) {
      (void)dyn.remove_vertex(static_cast<VertexId>(rng.next_below(n)));
    } else if (roll < 0.60) {
      (void)dyn.add_undirected_edge(static_cast<VertexId>(rng.next_below(n)),
                                    static_cast<VertexId>(rng.next_below(n)));
    } else {
      (void)dyn.remove_undirected_edge(
          static_cast<VertexId>(rng.next_below(n)),
          static_cast<VertexId>(rng.next_below(n)));
    }
    if (step % 97 == 0 || step + 1 == 500) {
      const graph::CsrGraph rebuilt = dyn.snapshot();
      dyn.compact();
      expect_same_csr(dyn.base(), rebuilt);
      EXPECT_EQ(dyn.overlay_edges(), 0u);
      EXPECT_EQ(dyn.num_edges(), rebuilt.num_edges());
      dyn.base().validate();
    }
  }
}

TEST(DynamicGraph, AutoCompactionTriggersAtThreshold) {
  Rng rng(7);
  graph::CsrGraph base = graph::generate_erdos_renyi(40, 80, rng);
  workload::CompactionPolicy policy;
  policy.threshold_fraction = 0.1;
  policy.min_overlay_edges = 4;
  workload::DynamicGraph dyn(std::move(base), policy);

  EXPECT_EQ(dyn.compactions(), 0u);
  for (int i = 0; i < 400; ++i) {
    (void)dyn.add_undirected_edge(
        static_cast<VertexId>(rng.next_below(dyn.num_vertices())),
        static_cast<VertexId>(rng.next_below(dyn.num_vertices())));
  }
  EXPECT_GT(dyn.compactions(), 0u);
  // The overlay never grows far past the threshold before folding in.
  EXPECT_LE(dyn.overlay_edges(),
            static_cast<EdgeId>(0.1 * static_cast<double>(
                                          dyn.base().num_edges())) +
                policy.min_overlay_edges);
  // Auto-compaction folded correctly: an explicit compact() of the residual
  // overlay agrees with the from-scratch rebuild.
  const graph::CsrGraph rebuilt = dyn.snapshot();
  dyn.compact();
  expect_same_csr(dyn.base(), rebuilt);
}

// ----------------------------------------------------------------- Sampler

TEST(Sampler, DeterministicForFixedSeed) {
  const graph::Dataset ds = make_test_dataset(120, 360, 11);
  workload::SamplerParams sp;
  sp.fanouts = {4, 3};
  sp.seed = 99;
  const workload::NeighborSampler sampler(sp);
  const workload::CsrSource source(ds.graph);

  const std::vector<VertexId> seeds = {5, 17, 42};
  const auto a = sampler.sample(source, seeds, /*salt=*/3);
  const auto b = sampler.sample(source, seeds, /*salt=*/3);
  EXPECT_EQ(a.global_ids, b.global_ids);
  expect_same_csr(a.subgraph, b.subgraph);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.frontier_sizes, b.frontier_sizes);

  // A different salt decorrelates the draw (same params, same seeds).
  const auto c = sampler.sample(source, seeds, /*salt=*/4);
  EXPECT_NE(a.content_hash, c.content_hash);
}

TEST(Sampler, RespectsFanoutCapsAndDedups) {
  const graph::Dataset ds = make_test_dataset(200, 1000, 5);
  workload::SamplerParams sp;
  sp.fanouts = {3, 2};
  sp.seed = 1;
  const workload::NeighborSampler sampler(sp);
  const workload::CsrSource source(ds.graph);

  const std::vector<VertexId> seeds = {0, 1, 0};  // duplicate seed collapses
  const auto batch = sampler.sample(source, seeds, 0);
  EXPECT_EQ(batch.num_seeds, 2u);
  EXPECT_EQ(batch.global_ids[0], 0u);
  EXPECT_EQ(batch.global_ids[1], 1u);

  // Dedup: local ids are unique.
  std::set<VertexId> unique(batch.global_ids.begin(), batch.global_ids.end());
  EXPECT_EQ(unique.size(), batch.global_ids.size());

  // Per-hop growth is bounded by the previous frontier times the fanout.
  ASSERT_EQ(batch.frontier_sizes.size(), 2u);
  EXPECT_LE(batch.frontier_sizes[0], batch.num_seeds * sp.fanouts[0]);
  EXPECT_LE(batch.frontier_sizes[1],
            batch.frontier_sizes[0] * sp.fanouts[1]);
  EXPECT_EQ(batch.global_ids.size(),
            static_cast<std::size_t>(batch.num_seeds) +
                batch.frontier_sizes[0] + batch.frontier_sizes[1]);

  // The induced subgraph is symmetric and structurally valid.
  batch.subgraph.validate();
  for (VertexId v = 0; v < batch.subgraph.num_vertices(); ++v) {
    for (const VertexId u : batch.subgraph.neighbors(v)) {
      EXPECT_TRUE(batch.subgraph.has_edge(u, v));
    }
  }
}

TEST(Sampler, ZeroFanoutTakesAllNeighbors) {
  const graph::Dataset ds = make_test_dataset(50, 120, 3);
  workload::SamplerParams sp;
  sp.fanouts = {0};
  const workload::NeighborSampler sampler(sp);
  const workload::CsrSource source(ds.graph);
  const auto batch = sampler.sample(source, {7}, 0);
  // Every neighbor of the seed is present.
  EXPECT_EQ(batch.global_ids.size(), 1 + ds.graph.degree(7));
}

TEST(Sampler, ZeroDegreeSeedYieldsSingletonBatch) {
  graph::CsrBuilder b(4);
  b.add_undirected_edge(1, 2);
  const graph::CsrGraph g = std::move(b).build();
  const workload::CsrSource source(g);
  workload::SamplerParams sp;
  sp.fanouts = {4, 4};
  const workload::NeighborSampler sampler(sp);
  const auto batch = sampler.sample(source, {0}, 0);  // vertex 0 is isolated
  EXPECT_EQ(batch.global_ids.size(), 1u);
  EXPECT_EQ(batch.subgraph.num_vertices(), 1u);
  EXPECT_EQ(batch.subgraph.num_edges(), 0u);
  EXPECT_EQ(batch.sampled_edges, 0u);
}

TEST(Sampler, DynamicGraphMatchesItsSnapshot) {
  // Sampling through the overlay must agree with sampling the compacted
  // snapshot — the overlay is invisible to consumers.
  Rng rng(13);
  graph::CsrGraph base = graph::generate_erdos_renyi(80, 200, rng);
  workload::DynamicGraph dyn(std::move(base), manual_compaction());
  for (int i = 0; i < 120; ++i) {
    const VertexId u = static_cast<VertexId>(rng.next_below(80));
    const VertexId v = static_cast<VertexId>(rng.next_below(80));
    if (rng.next_bool(0.6)) {
      (void)dyn.add_undirected_edge(u, v);
    } else {
      (void)dyn.remove_undirected_edge(u, v);
    }
  }
  const graph::CsrGraph snap = dyn.snapshot();
  const workload::CsrSource source(snap);
  workload::SamplerParams sp;
  sp.fanouts = {5, 3};
  sp.seed = 77;
  const workload::NeighborSampler sampler(sp);
  const std::vector<VertexId> seeds = {2, 40, 79};
  const auto via_overlay = sampler.sample(dyn, seeds, 9);
  const auto via_snapshot = sampler.sample(source, seeds, 9);
  EXPECT_EQ(via_overlay.content_hash, via_snapshot.content_hash);
  EXPECT_EQ(via_overlay.global_ids, via_snapshot.global_ids);
}

TEST(Sampler, BatchDatasetInheritsSpec) {
  const graph::Dataset parent = make_test_dataset(60, 150, 21);
  workload::SamplerParams sp;
  sp.fanouts = {4};
  const workload::NeighborSampler sampler(sp);
  const workload::CsrSource source(parent.graph);
  auto batch = sampler.sample(source, {3, 9}, 1);
  const EdgeId batch_edges = batch.subgraph.num_edges();
  const auto ds = workload::make_batch_dataset(parent, std::move(batch));
  EXPECT_EQ(std::string(ds->spec.name), std::string(parent.spec.name));
  EXPECT_EQ(ds->spec.feature_dim, parent.spec.feature_dim);
  EXPECT_EQ(ds->scale, parent.scale);
  EXPECT_EQ(ds->num_edges(), batch_edges);
}

// ------------------------------------------------------- ShardChurnTracker

TEST(ShardChurn, TracksCutAndGhostsExactly) {
  // Under kHash ownership the tracker's incremental counters must match a
  // from-scratch re-plan of the mutated graph exactly — including vertices
  // born after the baseline plan (hash ownership extends to them).
  graph::Dataset ds = make_test_dataset(90, 260, 31);
  const std::uint32_t chips = 4;
  workload::DynamicGraph dyn(ds.graph, manual_compaction());
  cluster::ShardChurnTracker tracker(
      cluster::make_shard_plan(ds, chips, cluster::ShardStrategy::kHash));
  EXPECT_EQ(tracker.cut_drift(), 0u);

  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const VertexId n = dyn.num_vertices();
    const double roll = rng.next_double();
    if (roll < 0.05) {
      (void)dyn.add_vertex();
      continue;
    }
    const VertexId u = static_cast<VertexId>(rng.next_below(n));
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (roll < 0.65) {
      if (dyn.add_edge(u, v)) tracker.note_edge_added(u, v);
      if (dyn.add_edge(v, u)) tracker.note_edge_added(v, u);
    } else {
      if (dyn.remove_edge(u, v)) tracker.note_edge_removed(u, v);
      if (dyn.remove_edge(v, u)) tracker.note_edge_removed(v, u);
    }
  }

  graph::Dataset mutated;
  mutated.spec = ds.spec;
  mutated.scale = ds.scale;
  mutated.graph = dyn.snapshot();
  mutated.degree_stats = graph::compute_degree_stats(mutated.graph);
  const cluster::ShardPlan fresh = cluster::make_shard_plan(
      mutated, chips, cluster::ShardStrategy::kHash);
  EXPECT_EQ(tracker.cut_edges(), fresh.cut_edges);
  EXPECT_EQ(tracker.total_ghosts(), fresh.total_ghosts);

  // Rebase adopts the fresh cut as the new baseline and clears the drift.
  tracker.rebase(fresh);
  EXPECT_EQ(tracker.cut_drift(), 0u);
  EXPECT_EQ(tracker.mutations_since_rebase(), 0u);
  EXPECT_FALSE(tracker.should_reshard(0.01));
}

TEST(ShardChurn, ReshardTriggerFiresOnDrift) {
  graph::Dataset ds = make_test_dataset(64, 120, 41);
  workload::DynamicGraph dyn(ds.graph, manual_compaction());
  cluster::ShardChurnTracker tracker(
      cluster::make_shard_plan(ds, 4, cluster::ShardStrategy::kHash));
  ASSERT_FALSE(tracker.should_reshard(0.05));

  // Pump in cross-chip edges (consecutive ids differ mod 4) until the cut
  // drifts well past 5%.
  Rng rng(3);
  for (int i = 0; i < 400 && !tracker.should_reshard(0.05); ++i) {
    const VertexId u = static_cast<VertexId>(rng.next_below(63));
    if (dyn.add_edge(u, u + 1)) tracker.note_edge_added(u, u + 1);
    if (dyn.add_edge(u + 1, u)) tracker.note_edge_added(u + 1, u);
  }
  EXPECT_TRUE(tracker.should_reshard(0.05));
  EXPECT_GT(tracker.cut_drift(), 0u);
  // Single-chip plans and disabled thresholds never fire.
  EXPECT_FALSE(tracker.should_reshard(0.0));
}

// ------------------------------------------------------- WorkloadGenerator

workload::DynamicWorkloadParams small_workload_params() {
  workload::DynamicWorkloadParams p;
  p.arrival.rate_per_mcycle = 400.0;
  p.seed = 17;
  p.num_ops = 120;
  p.mutation_fraction = 0.5;
  p.num_seeds = 3;
  p.sampler.fanouts = {4, 2};
  p.sampler.seed = 23;
  p.num_tenants = 2;
  return p;
}

TEST(WorkloadGenerator, DeterministicStream) {
  const graph::Dataset parent = make_test_dataset(100, 300, 51);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, parent.spec, 8);
  const workload::WorkloadGenerator gen(small_workload_params());

  workload::DynamicGraph dyn_a(parent.graph);
  workload::DynamicGraph dyn_b(parent.graph);
  const auto a = gen.generate(dyn_a, parent, job);
  const auto b = gen.generate(dyn_b, parent, job);

  ASSERT_EQ(a.mutations.size(), b.mutations.size());
  for (std::size_t i = 0; i < a.mutations.size(); ++i) {
    EXPECT_EQ(a.mutations[i].kind, b.mutations[i].kind);
    EXPECT_EQ(a.mutations[i].at, b.mutations[i].at);
    EXPECT_EQ(a.mutations[i].u, b.mutations[i].u);
    EXPECT_EQ(a.mutations[i].v, b.mutations[i].v);
    EXPECT_EQ(a.mutations[i].applied, b.mutations[i].applied);
  }
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].id, b.queries[i].id);
    EXPECT_EQ(a.queries[i].arrival, b.queries[i].arrival);
    EXPECT_EQ(a.queries[i].dataset_key, b.queries[i].dataset_key);
    ASSERT_NE(a.queries[i].dataset, nullptr);
    expect_same_csr(a.queries[i].dataset->graph, b.queries[i].dataset->graph);
  }
  EXPECT_EQ(a.stats.mutations + a.stats.queries, gen.params().num_ops);
  EXPECT_EQ(dyn_a.num_edges(), dyn_b.num_edges());
  EXPECT_EQ(a.stats.final_edges, dyn_a.num_edges());

  // Queries arrive in non-decreasing order (ServingEngine::replay's
  // contract).
  for (std::size_t i = 1; i < a.queries.size(); ++i) {
    EXPECT_LE(a.queries[i - 1].arrival, a.queries[i].arrival);
  }
}

TEST(WorkloadGenerator, RecordsTraceInstants) {
  const graph::Dataset parent = make_test_dataset(80, 240, 61);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, parent.spec, 8);
  workload::DynamicWorkloadParams p = small_workload_params();
  p.num_chips = 4;
  p.reshard_threshold = 0.05;
  p.mutation_fraction = 0.9;
  p.num_ops = 300;
  const workload::WorkloadGenerator gen(p);

  sim::Tracer tracer;
  tracer.enable();
  workload::DynamicGraph dyn(parent.graph);
  const auto wl = gen.generate(dyn, parent, job, &tracer);

  std::uint64_t applied = 0;
  for (const auto& m : wl.mutations) applied += m.applied ? 1 : 0;
  EXPECT_EQ(tracer.count(sim::TraceEvent::kGraphMutation), applied);
  EXPECT_EQ(tracer.count(sim::TraceEvent::kReshard), wl.stats.reshards);
  EXPECT_GT(wl.stats.reshards, 0u);  // heavy churn must recut at 5% drift

  // After the final rebase-free stretch the tracker's counters are exact:
  // a fresh plan of the final graph matches the drifted cut.
  graph::Dataset mutated;
  mutated.spec = parent.spec;
  mutated.scale = parent.scale;
  mutated.graph = dyn.snapshot();
  mutated.degree_stats = graph::compute_degree_stats(mutated.graph);
  const cluster::ShardPlan fresh = cluster::make_shard_plan(
      mutated, p.num_chips, cluster::ShardStrategy::kHash);
  EXPECT_EQ(wl.stats.final_cut_edges, fresh.cut_edges);
}

// ------------------------------------------------- end-to-end determinism

TEST(DynamicServing, BitIdenticalAcrossSimulationModes) {
  // The acceptance criterion: a dynamic workload's serving report —
  // per-request sampled datasets dispatched through the cluster scheduler —
  // is bit-identical across lockstep vs fast-forward chip simulation and
  // serial vs parallel cluster simulation.
  const graph::Dataset parent = make_test_dataset(100, 300, 71);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, parent.spec, 8);
  workload::DynamicWorkloadParams wp = small_workload_params();
  wp.num_ops = 40;
  wp.slo_cycles = 400000;
  const workload::WorkloadGenerator gen(wp);
  workload::DynamicGraph dyn(parent.graph);
  const auto wl = gen.generate(dyn, parent, job);
  ASSERT_GT(wl.queries.size(), 4u);

  serving::ServingParams sp;
  sp.seed = 2;
  sp.queue_depth = 0;
  sp.max_batch = 4;
  sp.slo_cycles = wp.slo_cycles;

  std::vector<serving::ServingReport> reports;
  for (const bool shard_mode : {false, true}) {
    for (const bool fast_forward : {false, true}) {
      for (const bool parallel : {false, true}) {
        core::AuroraConfig cfg = small_config();
        cfg.fast_forward = fast_forward;
        cluster::ClusterParams cp;
        cp.num_chips = 2;
        cp.parallel = parallel;
        sp.mode = shard_mode ? cluster::DispatchMode::kShardParallel
                             : cluster::DispatchMode::kDataParallel;
        serving::ServingEngine engine(cfg, cp, sp);
        reports.push_back(engine.replay(parent, wl.queries));
        EXPECT_EQ(reports.back().served.size(), wl.queries.size());
      }
    }
  }
  // Compare within each dispatch mode: all four engine flavours agree.
  for (std::size_t mode = 0; mode < 2; ++mode) {
    const auto& baseline = reports[mode * 4];
    for (std::size_t i = 1; i < 4; ++i) {
      const auto diffs =
          serving::diff_serving_reports(baseline, reports[mode * 4 + i]);
      EXPECT_TRUE(diffs.empty())
          << "mode " << mode << " flavour " << i << ": " << diffs.front();
    }
  }
}

TEST(DynamicServing, PerRequestDatasetsDoNotAliasInServiceCache) {
  // Two queries with identical layer shapes but different subgraphs must
  // not reuse each other's cached service metrics: a request over a larger
  // subgraph takes longer. Regression test for dataset-blind cache keys.
  const graph::Dataset parent = make_test_dataset(200, 1200, 81);
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, parent.spec, 8);

  workload::SamplerParams small_params;
  small_params.fanouts = {1};
  small_params.seed = 5;
  workload::SamplerParams big_params;
  big_params.fanouts = {0, 0};
  big_params.seed = 5;
  const workload::CsrSource source(parent.graph);
  auto small_batch =
      workload::NeighborSampler(small_params).sample(source, {0}, 0);
  auto big_batch = workload::NeighborSampler(big_params)
                       .sample(source, {0, 1, 2, 3, 4, 5, 6, 7}, 0);
  ASSERT_GT(big_batch.subgraph.num_edges(),
            small_batch.subgraph.num_edges() + 50);

  auto make_request = [&](std::uint64_t id, workload::SampledBatch batch) {
    serving::ServingRequest r;
    r.id = id;
    r.job = job;
    r.label = "q";
    r.label += std::to_string(id);
    r.dataset_key = r.label;
    r.dataset_key += ":";
    r.dataset_key += std::to_string(batch.content_hash);
    r.dataset = workload::make_batch_dataset(parent, std::move(batch));
    r.arrival = 0;
    return r;
  };
  std::vector<serving::ServingRequest> requests;
  requests.push_back(make_request(0, std::move(small_batch)));
  requests.push_back(make_request(1, std::move(big_batch)));

  serving::ServingParams sp;
  sp.max_batch = 1;
  cluster::ClusterParams cp;
  cp.num_chips = 1;
  serving::ServingEngine engine(small_config(), cp, sp);
  const auto report = engine.replay(parent, std::move(requests));
  ASSERT_EQ(report.served.size(), 2u);
  EXPECT_GT(report.served[1].service_time(), report.served[0].service_time());
}

}  // namespace
}  // namespace aurora
