// Tests for the invariant-checking layer: the checker component itself, the
// conservation laws of the NoC model across overlay configurations, the
// RunMetrics differ, and a fully checked engine run in both scheduler modes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "noc/network.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"

namespace aurora {
namespace {

// ---------------------------------------------------------------- checker

/// A component whose invariants always fail — exercises the report path.
class Faulty final : public sim::Component {
 public:
  Faulty() : Component("faulty") {}
  void tick(Cycle) override {}
  [[nodiscard]] bool idle() const override { return true; }
  [[nodiscard]] Cycle next_event_cycle(Cycle) const override {
    return sim::kNoEvent;
  }
  void verify_invariants(sim::InvariantReport& report) const override {
    report.require(false, "broken law", "details here");
    report.require(true, "intact law");
  }
};

TEST(InvariantChecker, ViolationThrowsWithComponentRuleAndCycle) {
  Faulty faulty;
  sim::InvariantChecker checker;
  checker.watch(&faulty);
  try {
    checker.check_now(123);
    FAIL() << "expected an invariant violation";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("faulty"), std::string::npos) << what;
    EXPECT_NE(what.find("broken law"), std::string::npos) << what;
    EXPECT_EQ(what.find("intact law"), std::string::npos) << what;
    EXPECT_NE(what.find("123"), std::string::npos) << what;
  }
  EXPECT_EQ(checker.checks_run(), 1u);
}

TEST(InvariantChecker, ReportCollectsAllViolations) {
  Faulty faulty;
  sim::InvariantReport report(7, /*drained=*/true);
  report.set_subject(faulty.name());
  faulty.verify_invariants(report);
  ASSERT_EQ(report.violations().size(), 1u);
  EXPECT_EQ(report.violations()[0].component, "faulty");
  EXPECT_EQ(report.violations()[0].rule, "broken law");
  EXPECT_EQ(report.violations()[0].cycle, 7u);
  EXPECT_FALSE(report.ok());
}

TEST(InvariantChecker, WithoutIntervalHasNoEventsOfItsOwn) {
  sim::InvariantChecker checker;
  EXPECT_EQ(checker.interval(), 0u);
  EXPECT_TRUE(checker.idle());
  EXPECT_EQ(checker.next_event_cycle(0), sim::kNoEvent);
  EXPECT_EQ(checker.next_event_cycle(999), sim::kNoEvent);
}

TEST(InvariantChecker, IntervalPinsCheckBoundaries) {
  sim::InvariantChecker checker(64);
  // The next boundary is an event, so fast-forward jumps land on it.
  EXPECT_LE(checker.next_event_cycle(0), 64u);
  EXPECT_NE(checker.next_event_cycle(0), sim::kNoEvent);
}

// ------------------------------------------------------- NoC conservation

struct TrafficResult {
  noc::NocStats stats;
  Bytes flit_bytes = 0;
};

/// Drive a few waves of deterministic random traffic through `config`, then
/// run the checker's drain-point pass and return the stats.
TrafficResult run_traffic(const noc::NocConfig& config, std::uint64_t seed) {
  noc::NocParams params;
  params.k = config.k();
  sim::Simulator sim;
  noc::Network net(params);
  sim.add(&net);
  net.configure(config);
  sim::InvariantChecker checker;
  checker.watch(&net);
  Rng rng(seed);
  const std::uint32_t nodes = params.k * params.k;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 24; ++i) {
      const auto src = static_cast<noc::NodeId>(rng.next_below(nodes));
      auto dst = static_cast<noc::NodeId>(rng.next_below(nodes));
      if (dst == src) dst = (dst + 1) % nodes;
      net.send(src, dst, 8 + rng.next_below(200), 0, sim.now());
    }
    sim.run_until_idle(1'000'000);
    checker.check_now(sim.now());
  }
  return {net.stats(), params.flit_bytes};
}

void expect_conserved(const TrafficResult& r) {
  EXPECT_GT(r.stats.packets_delivered, 0u);
  EXPECT_EQ(r.stats.packets_injected, r.stats.packets_delivered);
  EXPECT_EQ(r.stats.flits_injected, r.stats.flits_ejected);
  EXPECT_EQ(r.stats.link_bytes + r.stats.bypass_bytes,
            r.stats.flit_hops * r.flit_bytes);
}

TEST(NocInvariants, ConservationAfterDrainMeshOnly) {
  expect_conserved(run_traffic(noc::NocConfig(4), 1));
}

TEST(NocInvariants, ConservationAfterDrainBypassHeavy) {
  noc::NocConfig c(8);
  for (std::uint32_t line = 0; line < 8; ++line) {
    c.add_row_segment({line, 0, 7});
    c.add_col_segment({line, 0, 7});
  }
  const TrafficResult r = run_traffic(c, 2);
  expect_conserved(r);
  EXPECT_GT(r.stats.bypass_flit_hops, 0u);
  EXPECT_GT(r.stats.bypass_bytes, 0u);
}

TEST(NocInvariants, ConservationAfterDrainRingOverlay) {
  noc::NocConfig c(8);
  c.add_row_segment({0, 0, 7});
  noc::RingConfig ring;
  for (noc::NodeId i = 0; i < 8; ++i) ring.nodes.push_back(i);
  c.add_ring(ring);
  expect_conserved(run_traffic(c, 3));
}

// ----------------------------------------------------- RunMetrics differ

TEST(DiffRunMetrics, EqualRunsDiffEmptyAndSkipCounterIgnored) {
  core::RunMetrics a;
  a.total_cycles = 100;
  a.counters.inc("noc.packets", 7);
  a.counters.inc("sim.cycles_skipped", 5);
  core::RunMetrics b = a;
  b.counters.inc("sim.cycles_skipped", 10);  // scheduler work, not behaviour
  EXPECT_TRUE(core::diff_run_metrics(a, b).empty());
}

TEST(DiffRunMetrics, ReportsEveryMismatchedField) {
  core::RunMetrics a;
  core::RunMetrics b;
  a.total_cycles = 100;
  b.total_cycles = 101;
  b.avg_hops = 1.5;
  b.counters.inc("noc.packets", 1);
  const auto diffs = core::diff_run_metrics(a, b);
  ASSERT_EQ(diffs.size(), 3u);
  EXPECT_NE(diffs[0].find("total_cycles"), std::string::npos);
}

// ------------------------------------------------------- full engine runs

TEST(EngineInvariants, CheckedRunIsBitIdenticalAcrossSchedulerModes) {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  cfg.check_invariants = true;
  cfg.invariant_interval = 128;
  cfg.dram.timing.t_refi = 300;  // small, so refresh catch-up is exercised
  cfg.dram.timing.t_rfc = 30;

  Rng rng(11);
  graph::Dataset ds;
  ds.spec.name = "invariants";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_erdos_renyi(48, 96, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  const gnn::LayerConfig layer{8, 8};

  const auto run = [&](bool fast_forward) {
    core::AuroraConfig c = cfg;
    c.fast_forward = fast_forward;
    core::AuroraAccelerator accel(c);
    return accel.run_layer(ds, gnn::GnnModel::kGcn, layer);
  };
  const core::RunMetrics lockstep = run(false);
  const core::RunMetrics fastfwd = run(true);
  const auto diffs = core::diff_run_metrics(lockstep, fastfwd);
  EXPECT_TRUE(diffs.empty())
      << diffs.size() << " field(s) diverge; first: "
      << (diffs.empty() ? std::string() : diffs.front());
  EXPECT_GT(lockstep.total_cycles, 0u);
}

TEST(EngineInvariants, CheckedRunMatchesUncheckedRun) {
  // The checker is a pure observer: attaching it must not change results.
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.array_dim = 4;
  cfg.noc.k = 4;
  Rng rng(13);
  graph::Dataset ds;
  ds.spec.name = "invariants";
  ds.spec.feature_dim = 8;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  ds.graph = graph::generate_power_law({.n = 40, .undirected_edges = 120}, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  const gnn::LayerConfig layer{8, 12};

  const auto run = [&](bool check, Cycle interval) {
    core::AuroraConfig c = cfg;
    c.check_invariants = check;
    c.invariant_interval = interval;
    core::AuroraAccelerator accel(c);
    return accel.run_layer(ds, gnn::GnnModel::kAgnn, layer);
  };
  const core::RunMetrics plain = run(false, 0);
  const core::RunMetrics checked = run(true, 256);
  EXPECT_TRUE(core::diff_run_metrics(plain, checked).empty());
}

}  // namespace
}  // namespace aurora
