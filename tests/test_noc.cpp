// Tests for the reconfigurable NoC: configuration validation, routing,
// flit-level delivery, bypass links, rings and flow control.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "noc/config.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "sim/simulator.hpp"

namespace aurora::noc {
namespace {

// ------------------------------------------------------------ configuration

TEST(NocConfig, AcceptsDisjointSegments) {
  NocConfig c(8);
  c.add_row_segment({0, 0, 3});
  c.add_row_segment({0, 4, 7});
  c.add_row_segment({1, 0, 7});
  EXPECT_EQ(c.row_segments().size(), 3u);
}

TEST(NocConfig, RejectsOverlappingSegments) {
  NocConfig c(8);
  c.add_row_segment({0, 0, 4});
  EXPECT_THROW(c.add_row_segment({0, 3, 7}), Error);
  EXPECT_THROW(c.add_row_segment({0, 4, 6}), Error);  // shared endpoint
}

TEST(NocConfig, RejectsTrivialAndOutOfRangeSegments) {
  NocConfig c(8);
  EXPECT_THROW(c.add_row_segment({0, 3, 3}), Error);
  EXPECT_THROW(c.add_row_segment({0, 3, 4}), Error);  // length 1
  EXPECT_THROW(c.add_row_segment({0, 5, 9}), Error);
  EXPECT_THROW(c.add_row_segment({9, 0, 3}), Error);
}

TEST(NocConfig, SegmentLookupAtEndpointsOnly) {
  NocConfig c(8);
  c.add_row_segment({2, 1, 6});
  EXPECT_TRUE(c.row_segment_at(2, 1).has_value());
  EXPECT_TRUE(c.row_segment_at(2, 6).has_value());
  EXPECT_FALSE(c.row_segment_at(2, 3).has_value());  // interior
  EXPECT_FALSE(c.row_segment_at(3, 1).has_value());  // other row
}

TEST(NocConfig, RingRequiresPhysicalLinks) {
  NocConfig c(4);
  // 2x2 block of mesh-adjacent nodes: 0,1,5,4.
  c.add_ring({{0, 1, 5, 4}});
  EXPECT_EQ(c.ring_successor(0), 1u);
  EXPECT_EQ(c.ring_successor(4), 0u);
  // Non-adjacent jump is rejected.
  NocConfig bad(4);
  EXPECT_THROW(bad.add_ring({{0, 2, 10, 8}}), Error);
}

TEST(NocConfig, RingMayUseBypassAsWrapLink) {
  NocConfig c(8);
  c.add_row_segment({0, 0, 7});
  // Row 0 left-to-right with the bypass wrapping 7 -> 0.
  RingConfig ring;
  for (NodeId i = 0; i < 8; ++i) ring.nodes.push_back(i);
  c.add_ring(ring);
  EXPECT_EQ(c.ring_successor(7), 0u);
}

TEST(NocConfig, NodeInTwoRingsRejected) {
  NocConfig c(4);
  c.add_ring({{0, 1}});
  EXPECT_THROW(c.add_ring({{1, 2}}), Error);
}

TEST(NocConfig, RingDuplicateNodeRejected) {
  // Regression: ring_of/ring_successor resolve by first occurrence, so a
  // node appearing twice short-circuits the traversal and livelocks flits
  // circulating the ring. Every consecutive hop here is physically linked
  // (the column segment joins 1 and 7), so only a duplicate check can
  // reject it.
  NocConfig c(3);
  c.add_col_segment({1, 0, 2});
  EXPECT_THROW(c.add_ring({{7, 4, 1, 7, 6}}), Error);
}

TEST(NocConfig, RingWrapWithoutSegmentIsUnroutableAndFallsBackToMesh) {
  // Regression: a full-row ring whose wrap column has no bypass segment
  // used to send route_output down the ring branch, and resolve_hop then
  // threw on the wrap hop (bypass port with no segment endpoint). Such a
  // ring is now flagged unroutable and ignored by routing.
  NocConfig c(4);
  RingConfig ring;
  for (NodeId i = 0; i < 4; ++i) ring.nodes.push_back(i);  // row 0, no wrap
  c.add_ring_unchecked(ring);
  ASSERT_EQ(c.rings().size(), 1u);
  EXPECT_FALSE(c.ring_routable(0));
  EXPECT_FALSE(c.all_rings_routable());
  // Plain dimension-order routing takes over for traffic between members.
  EXPECT_EQ(route_output(3, 0, c), Port::kWest);
  EXPECT_EQ(path_hops(3, 0, c), 3u);
}

TEST(NocConfig, RoutableRingReportsRoutable) {
  NocConfig c(4);
  c.add_ring({{0, 1, 5, 4}});
  EXPECT_TRUE(c.ring_routable(0));
  EXPECT_TRUE(c.all_rings_routable());
}

TEST(Network, ConfigureRejectsUnroutableRing) {
  NocParams p;
  p.k = 4;
  Network net(p);
  NocConfig c(4);
  RingConfig ring;
  for (NodeId i = 0; i < 4; ++i) ring.nodes.push_back(i);
  c.add_ring_unchecked(ring);
  EXPECT_THROW(net.configure(c), Error);
}

TEST(NocConfig, SwitchWriteDelta) {
  NocConfig a(8), b(8);
  a.add_row_segment({0, 0, 7});  // 8 switch states
  b.add_row_segment({0, 0, 7});
  EXPECT_EQ(NocConfig::switch_writes_between(a, b), 0u);
  b.add_col_segment({1, 0, 3});  // length 3 -> 3+1 switch states
  EXPECT_EQ(NocConfig::switch_writes_between(a, b), 4u);
  EXPECT_EQ(NocConfig::switch_writes_between(b, a), 4u);  // symmetric teardown
}

// ------------------------------------------------------------------ routing

TEST(Routing, XyOrderColumnFirst) {
  const NocConfig c(4);
  // node (0,0) -> (3,3): move east until column matches, then south.
  EXPECT_EQ(route_output(to_node({0, 0}, 4), to_node({3, 3}, 4), c),
            Port::kEast);
  EXPECT_EQ(route_output(to_node({0, 3}, 4), to_node({3, 3}, 4), c),
            Port::kSouth);
  EXPECT_EQ(route_output(to_node({3, 3}, 4), to_node({3, 3}, 4), c),
            Port::kLocal);
  EXPECT_EQ(route_output(to_node({2, 2}, 4), to_node({2, 0}, 4), c),
            Port::kWest);
  EXPECT_EQ(route_output(to_node({2, 2}, 4), to_node({0, 2}, 4), c),
            Port::kNorth);
}

TEST(Routing, MeshHopsAreManhattanDistance) {
  const NocConfig c(8);
  EXPECT_EQ(path_hops(to_node({0, 0}, 8), to_node({7, 7}, 8), c), 14u);
  EXPECT_EQ(path_hops(to_node({3, 4}, 8), to_node({3, 4}, 8), c), 0u);
  EXPECT_EQ(path_hops(to_node({2, 1}, 8), to_node({2, 2}, 8), c), 1u);
}

TEST(Routing, BypassShortensLongRowTrips) {
  NocConfig c(8);
  c.add_row_segment({0, 0, 7});
  // (0,0) -> (0,7): one bypass hop instead of 7 mesh hops.
  EXPECT_EQ(route_output(to_node({0, 0}, 8), to_node({0, 7}, 8), c),
            Port::kBypassRow);
  EXPECT_EQ(path_hops(to_node({0, 0}, 8), to_node({0, 7}, 8), c), 1u);
  // Other rows are unaffected.
  EXPECT_EQ(path_hops(to_node({1, 0}, 8), to_node({1, 7}, 8), c), 7u);
}

TEST(Routing, BypassNotTakenWhenItOvershoots) {
  NocConfig c(8);
  c.add_row_segment({0, 0, 7});
  // (0,0) -> (0,3): the segment jumps to column 7, overshooting; use mesh.
  EXPECT_EQ(route_output(to_node({0, 0}, 8), to_node({0, 3}, 8), c),
            Port::kEast);
  EXPECT_EQ(path_hops(to_node({0, 0}, 8), to_node({0, 3}, 8), c), 3u);
}

TEST(Routing, ColumnBypassAfterXCorrection) {
  NocConfig c(8);
  c.add_col_segment({5, 0, 7});
  // (0,0) -> (7,5): east to column 5, then a single column-bypass hop.
  EXPECT_EQ(path_hops(to_node({0, 0}, 8), to_node({7, 5}, 8), c), 6u);
}

TEST(Routing, MidpointSegmentUsedFromItsEndpoint) {
  NocConfig c(8);
  c.add_row_segment({2, 2, 6});
  // (2,0) -> (2,6): two mesh hops to the endpoint at column 2, then bypass.
  EXPECT_EQ(path_hops(to_node({2, 0}, 8), to_node({2, 6}, 8), c), 3u);
}

TEST(Routing, RingOverrideFollowsSuccessor) {
  NocConfig c(4);
  c.add_ring({{0, 1, 5, 4}});
  // 4 -> 1 inside the ring goes through successor 0, not directly east.
  EXPECT_EQ(route_output(4, 1, c), Port::kNorth);  // 4 -> 0 is row 1 -> row 0
  EXPECT_EQ(path_hops(4, 1, c), 2u);               // 4 -> 0 -> 1
}

TEST(Routing, ResolveHopBypassLength) {
  NocConfig c(8);
  c.add_row_segment({0, 1, 6});
  const Hop hop = resolve_hop(to_node({0, 1}, 8), Port::kBypassRow, c);
  EXPECT_EQ(hop.next_node, to_node({0, 6}, 8));
  EXPECT_EQ(hop.length, 5u);
  EXPECT_TRUE(hop.via_bypass);
}

TEST(Routing, ResolveHopThrowsWithoutSegment) {
  const NocConfig c(8);
  EXPECT_THROW((void)resolve_hop(0, Port::kBypassRow, c), Error);
}

// ------------------------------------------------------------------ network

struct NetHarness {
  explicit NetHarness(NocParams p = {}) : net(p) { s.add(&net); }

  /// Send and run to drain; returns (arrival cycle, packet) of last delivery.
  void run(Cycle max_cycles = 200000) { s.run_until_idle(max_cycles); }

  sim::Simulator s;
  Network net;
};

TEST(Network, DeliversSinglePacket) {
  NetHarness h;
  std::uint64_t delivered_tag = 0;
  Cycle arrival = 0;
  h.net.set_delivery_callback([&](const Packet& p, Cycle at) {
    delivered_tag = p.tag;
    arrival = at;
  });
  h.net.send(0, 63, 256, /*tag=*/42, h.s.now());
  h.run();
  EXPECT_EQ(delivered_tag, 42u);
  EXPECT_GT(arrival, 0u);
  EXPECT_EQ(h.net.stats().packets_delivered, 1u);
  // 256 B / 32 B = 8 flits.
  EXPECT_EQ(h.net.stats().packet_hops.count(), 1u);
  EXPECT_DOUBLE_EQ(h.net.stats().packet_hops.mean(), 14.0);
}

TEST(Network, ZeroByteMessageStillOneFlit) {
  NetHarness h;
  h.net.send(0, 1, 0, 0, h.s.now());
  h.run();
  EXPECT_EQ(h.net.stats().packets_delivered, 1u);
  EXPECT_EQ(h.net.stats().flit_hops, 1u);
}

TEST(Network, LocalDeliveryWithoutHops) {
  NetHarness h;
  h.net.send(5, 5, 128, 9, h.s.now());
  h.run();
  EXPECT_EQ(h.net.stats().packets_delivered, 1u);
  EXPECT_DOUBLE_EQ(h.net.stats().packet_hops.mean(), 0.0);
}

TEST(Network, AllPairsDeliveryOnSmallMesh) {
  NocParams p;
  p.k = 4;
  NetHarness h(p);
  std::map<std::uint64_t, bool> seen;
  h.net.set_delivery_callback(
      [&](const Packet& pkt, Cycle) { seen[pkt.tag] = true; });
  std::uint64_t tag = 0;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      h.net.send(s, d, 64, tag++, h.s.now());
    }
  }
  h.run(1'000'000);
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(h.net.stats().packets_delivered, 256u);
}

TEST(Network, WormholeKeepsPacketsContiguous) {
  // Two long packets crossing the same column must not interleave flits —
  // verified indirectly: both arrive complete (eject asserts tail-last).
  NetHarness h;
  h.net.send(0, 56, 1024, 1, h.s.now());   // (0,0) -> (7,0)
  h.net.send(7, 63, 1024, 2, h.s.now());   // (0,7) -> (7,7)
  h.net.send(3, 59, 1024, 3, h.s.now());   // crossing traffic
  h.run();
  EXPECT_EQ(h.net.stats().packets_delivered, 3u);
}

TEST(Network, BypassReducesLatencyForLongTrips) {
  NocParams p;
  p.k = 16;
  // Plain mesh.
  NetHarness plain(p);
  plain.net.send(0, 15, 512, 0, 0);
  plain.run();
  const double mesh_latency = plain.net.stats().packet_latency.mean();

  // Same trip with a full-row bypass.
  NetHarness fast(p);
  NocConfig cfg(16);
  cfg.add_row_segment({0, 0, 15});
  fast.net.configure(cfg);
  fast.net.send(0, 15, 512, 0, 0);
  fast.run();
  const double bypass_latency = fast.net.stats().packet_latency.mean();
  EXPECT_LT(bypass_latency, 0.5 * mesh_latency);
  EXPECT_GT(fast.net.stats().bypass_flit_hops, 0u);
}

TEST(Network, HotspotContentionSlowsDelivery) {
  // Many senders to one sink: average latency far above the uncontended
  // trip time, demonstrating modeled contention.
  NocParams p;
  p.k = 4;
  NetHarness h(p);
  for (NodeId s = 1; s < 16; ++s) h.net.send(s, 0, 512, s, 0);
  h.run(1'000'000);
  EXPECT_EQ(h.net.stats().packets_delivered, 15u);
  // Uncontended worst trip on a 4x4 is ~6 hops * ~3 cycles + 16 flits.
  EXPECT_GT(h.net.stats().packet_latency.max(),
            2.0 * h.net.stats().packet_latency.min());
}

TEST(Network, ConfigureRequiresDrainedNetwork) {
  NetHarness h;
  h.net.send(0, 9, 64, 0, 0);
  NocConfig cfg(8);
  EXPECT_THROW(h.net.configure(cfg), Error);
  h.run();
  EXPECT_NO_THROW(h.net.configure(cfg));
}

TEST(Network, ConfigureReportsSwitchWrites) {
  NetHarness h;
  NocConfig cfg(8);
  cfg.add_row_segment({0, 0, 7});  // 7+1 states
  EXPECT_EQ(h.net.configure(cfg), 8u);
  // Reapplying the same config writes nothing.
  NocConfig same(8);
  same.add_row_segment({0, 0, 7});
  EXPECT_EQ(h.net.configure(same), 0u);
}

TEST(Network, RingTrafficCirculates) {
  NocParams p;
  p.k = 4;
  NetHarness h(p);
  NocConfig cfg(4);
  cfg.add_ring({{0, 1, 5, 4}});
  h.net.configure(cfg);
  // 5 -> 1 must go 5 -> 4 -> 0 -> 1 (3 hops), not 1 mesh hop.
  h.net.send(5, 1, 32, 0, 0);
  h.run();
  EXPECT_DOUBLE_EQ(h.net.stats().packet_hops.mean(), 3.0);
}

TEST(Network, StatsCountFlitHops) {
  NetHarness h;
  h.net.send(0, 3, 96, 0, 0);  // 3 flits, 3 hops
  h.run();
  EXPECT_EQ(h.net.stats().flit_hops, 9u);
  EXPECT_EQ(h.net.stats().link_bytes, 9u * 32);
}

TEST(Network, DrainDeliveredPolling) {
  NetHarness h;
  h.net.send(0, 2, 64, 7, 0);
  h.run();
  auto out = h.net.drain_delivered();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tag, 7u);
  EXPECT_TRUE(h.net.drain_delivered().empty());
}

TEST(Network, DeterministicUnderFixedWorkload) {
  auto run_once = [] {
    NetHarness h;
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      const auto s = static_cast<NodeId>(rng.next_below(64));
      const auto d = static_cast<NodeId>(rng.next_below(64));
      h.net.send(s, d, 32 + 32 * rng.next_below(8), i, 0);
    }
    h.run(1'000'000);
    return h.net.stats().packet_latency.mean();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}


TEST(Network, MultipleVcsInterleavePackets) {
  // Two long packets sharing every link still both arrive; with 2 VCs the
  // second is not fully serialized behind the first.
  NocParams p;
  p.k = 8;
  p.num_vcs = 2;
  NetHarness h(p);
  Cycle first = 0, second = 0;
  h.net.set_delivery_callback([&](const Packet& pkt, Cycle at) {
    (first == 0 ? first : second) = at;
  });
  h.net.send(0, 7, 2048, 1, 0);
  h.net.send(0, 7, 2048, 2, 0);
  h.run();
  EXPECT_EQ(h.net.stats().packets_delivered, 2u);
  // With a single VC the second packet waits for the whole first; with two
  // VCs they share link bandwidth and finish close together.
  NocParams p1 = p;
  p1.num_vcs = 1;
  NetHarness h1(p1);
  Cycle s1_first = 0, s1_second = 0;
  h1.net.set_delivery_callback([&](const Packet& pkt, Cycle at) {
    (s1_first == 0 ? s1_first : s1_second) = at;
  });
  h1.net.send(0, 7, 2048, 1, 0);
  h1.net.send(0, 7, 2048, 2, 0);
  h1.run();
  const Cycle vc2_gap = second > first ? second - first : first - second;
  const Cycle vc1_gap =
      s1_second > s1_first ? s1_second - s1_first : s1_first - s1_second;
  EXPECT_LT(vc2_gap, vc1_gap);
}

TEST(Network, SingleVcStillWorks) {
  NocParams p;
  p.num_vcs = 1;
  NetHarness h(p);
  for (int i = 0; i < 50; ++i) {
    h.net.send(static_cast<NodeId>(i % 64),
               static_cast<NodeId>((i * 13) % 64), 96, i, 0);
  }
  h.run();
  EXPECT_EQ(h.net.stats().packets_delivered, 50u);
}

TEST(Network, RejectsTooManyVcs) {
  NocParams p;
  p.num_vcs = 9;
  EXPECT_THROW(Network bad(p), Error);
}

TEST(Network, VcsDeterministic) {
  auto run_once = [] {
    NocParams p;
    p.num_vcs = 4;
    NetHarness h(p);
    Rng rng(17);
    for (int i = 0; i < 300; ++i) {
      h.net.send(static_cast<NodeId>(rng.next_below(64)),
                 static_cast<NodeId>(rng.next_below(64)),
                 32 + 32 * rng.next_below(6), i, 0);
    }
    h.run(1'000'000);
    return h.net.stats().packet_latency.mean();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}


TEST(Routing, YxPolicyCorrectsRowsFirst) {
  NocConfig xy(4);
  NocConfig yx(4);
  yx.set_routing(RoutingPolicy::kYXFirst);
  const NodeId src = to_node({0, 0}, 4);
  const NodeId dst = to_node({3, 3}, 4);
  EXPECT_EQ(route_output(src, dst, xy), Port::kEast);
  EXPECT_EQ(route_output(src, dst, yx), Port::kSouth);
  // Same hop count, different path.
  EXPECT_EQ(path_hops(src, dst, xy), path_hops(src, dst, yx));
}

TEST(Network, YxPolicyDeliversEverything) {
  NocParams p;
  p.k = 4;
  NetHarness h(p);
  NocConfig cfg(4);
  cfg.set_routing(RoutingPolicy::kYXFirst);
  h.net.configure(cfg);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    h.net.send(static_cast<NodeId>(rng.next_below(16)),
               static_cast<NodeId>(rng.next_below(16)), 96, i, 0);
  }
  h.run(1'000'000);
  EXPECT_EQ(h.net.stats().packets_delivered, 200u);
}

}  // namespace
}  // namespace aurora::noc
