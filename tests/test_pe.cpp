// Tests for the reconfigurable PE: datapath math vs the reference kernels,
// cycle cost model, buffers, PPU and the timing component.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gnn/reference.hpp"
#include "pe/buffers.hpp"
#include "pe/datapath.hpp"
#include "pe/pe.hpp"
#include "pe/ppu.hpp"
#include "sim/simulator.hpp"

namespace aurora::pe {
namespace {

// ----------------------------------------------------------- config mapping

TEST(PeConfig, TableIIOpsMapToDatapathConfigs) {
  EXPECT_EQ(config_for_op(gnn::OpKind::kMatVec), PeConfigKind::kMatVec);
  EXPECT_EQ(config_for_op(gnn::OpKind::kDotProduct), PeConfigKind::kDotProduct);
  EXPECT_EQ(config_for_op(gnn::OpKind::kScalarVec), PeConfigKind::kScalarVec);
  EXPECT_EQ(config_for_op(gnn::OpKind::kElementwiseMul),
            PeConfigKind::kElementwiseMul);
  EXPECT_EQ(config_for_op(gnn::OpKind::kAccumulate), PeConfigKind::kAccumulate);
  EXPECT_EQ(config_for_op(gnn::OpKind::kElementwiseMax),
            PeConfigKind::kAccumulate);
  // PPU ops bypass the MAC array.
  EXPECT_EQ(config_for_op(gnn::OpKind::kActivation), PeConfigKind::kBypass);
  EXPECT_EQ(config_for_op(gnn::OpKind::kConcat), PeConfigKind::kBypass);
}

// --------------------------------------------------- structural correctness

class DatapathMath : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DatapathMath, MatVecMatchesReference) {
  const std::uint32_t len = GetParam();
  Rng rng(len);
  gnn::Matrix w(5, len);
  w.randomize(rng);
  gnn::Vector x(len);
  for (double& v : x) v = rng.next_double(-2, 2);

  PeDatapath dp{PeParams{}};
  dp.configure(PeConfigKind::kMatVec);
  const gnn::Vector got = dp.run_mat_vec(w, x);
  const gnn::Vector want = gnn::mat_vec(w, x);
  // The lane-grouped adder chain reassociates; allow round-off only.
  EXPECT_LT(gnn::max_abs_diff(got, want), 1e-9);
}

TEST_P(DatapathMath, DotMatchesReference) {
  const std::uint32_t len = GetParam();
  Rng rng(len + 100);
  gnn::Vector a(len), b(len);
  for (double& v : a) v = rng.next_double(-1, 1);
  for (double& v : b) v = rng.next_double(-1, 1);
  PeDatapath dp{PeParams{}};
  dp.configure(PeConfigKind::kDotProduct);
  EXPECT_NEAR(dp.run_dot(a, b), gnn::dot(a, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DatapathMath,
                         ::testing::Values(1u, 3u, 8u, 13u, 64u, 100u));

TEST(Datapath, ScalarAndElementwise) {
  PeDatapath dp{PeParams{}};
  dp.configure(PeConfigKind::kScalarVec);
  const gnn::Vector s = dp.run_scalar_vec(2.5, gnn::Vector{1, 2, 4});
  EXPECT_DOUBLE_EQ(s[2], 10.0);

  dp.configure(PeConfigKind::kElementwiseMul);
  const gnn::Vector m =
      dp.run_elementwise_mul(gnn::Vector{1, 2, 3}, gnn::Vector{4, 5, 6});
  EXPECT_DOUBLE_EQ(m[1], 10.0);

  dp.configure(PeConfigKind::kAccumulate);
  gnn::Vector acc{1, 1};
  dp.run_accumulate(acc, gnn::Vector{2, 3});
  EXPECT_DOUBLE_EQ(acc[1], 4.0);
}

TEST(Datapath, WrongConfigThrows) {
  PeDatapath dp{PeParams{}};
  dp.configure(PeConfigKind::kScalarVec);
  gnn::Matrix w(2, 2, 1.0);
  EXPECT_THROW((void)dp.run_mat_vec(w, gnn::Vector{1, 2}), Error);
}

TEST(Datapath, ReconfigurationCountsAndCost) {
  PeParams p;
  p.reconfig_cycles = 2;
  PeDatapath dp{p};
  EXPECT_EQ(dp.configure(PeConfigKind::kMatVec), 2u);
  EXPECT_EQ(dp.configure(PeConfigKind::kMatVec), 0u);  // no-op
  EXPECT_EQ(dp.configure(PeConfigKind::kAccumulate), 2u);
  EXPECT_EQ(dp.reconfigurations(), 2u);
}


TEST(Datapath, SubtractAndMaxInAdderWiring) {
  PeDatapath dp{PeParams{}};
  dp.configure(PeConfigKind::kAccumulate);
  const gnn::Vector d = dp.run_subtract(gnn::Vector{5, 2}, gnn::Vector{1, 7});
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], -5.0);
  gnn::Vector acc{0.5, 9.0};
  dp.run_elementwise_max(acc, gnn::Vector{3.0, 1.0});
  EXPECT_DOUBLE_EQ(acc[0], 3.0);
  EXPECT_DOUBLE_EQ(acc[1], 9.0);
  // Both require the adders-only wiring.
  dp.configure(PeConfigKind::kMatVec);
  EXPECT_THROW((void)dp.run_subtract(gnn::Vector{1}, gnn::Vector{1}), Error);
}

// -------------------------------------------------------------- cost model

TEST(CostModel, MatVecCyclesScaleWithWork) {
  PeParams p;  // 8 multipliers, pipeline 3
  const Cycle c1 = micro_op_cycles({PeConfigKind::kMatVec, 16, 4}, p);
  EXPECT_EQ(c1, 64u / 8 + 3);
  const Cycle c2 = micro_op_cycles({PeConfigKind::kMatVec, 16, 8}, p);
  EXPECT_EQ(c2, 128u / 8 + 3);
}

TEST(CostModel, ElementwiseUsesMultipliersOnly) {
  PeParams p;
  EXPECT_EQ(micro_op_cycles({PeConfigKind::kVecVec, 16, 1}, p), 2u + 1);
  EXPECT_EQ(micro_op_cycles({PeConfigKind::kScalarVec, 7, 1}, p), 1u + 1);
}

TEST(CostModel, AccumulateUsesAdders) {
  PeParams p;
  p.num_adders = 4;
  EXPECT_EQ(micro_op_cycles({PeConfigKind::kAccumulate, 16, 1}, p), 4u + 1);
}

TEST(CostModel, EnergyEventCounts) {
  const auto mv = micro_op_events({PeConfigKind::kMatVec, 16, 4});
  EXPECT_EQ(mv.fp_multiplies, 64u);
  EXPECT_EQ(mv.fp_adds, 64u);
  const auto sc = micro_op_events({PeConfigKind::kScalarVec, 16, 1});
  EXPECT_EQ(sc.fp_multiplies, 16u);
  EXPECT_EQ(sc.fp_adds, 0u);
  const auto acc = micro_op_events({PeConfigKind::kAccumulate, 16, 1});
  EXPECT_EQ(acc.fp_adds, 16u);
  EXPECT_EQ(acc.fp_multiplies, 0u);
}

// ------------------------------------------------------------------ buffers

TEST(BankBuffer, AllocationAndOverflow) {
  BankBuffer b(1000, 4);
  EXPECT_TRUE(b.allocate(600));
  EXPECT_FALSE(b.allocate(500));  // would overflow; unchanged
  EXPECT_EQ(b.used(), 600u);
  EXPECT_TRUE(b.allocate(400));
  EXPECT_EQ(b.free_bytes(), 0u);
  b.free(1000);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_THROW(b.free(1), Error);
}

TEST(BankBuffer, AccessCyclesAndAccounting) {
  BankBuffer b(1 << 20, 4);  // 4 banks x 8 B = 32 B per cycle
  EXPECT_EQ(b.access(64, false), 2u);
  EXPECT_EQ(b.access(65, true), 3u);
  EXPECT_EQ(b.bytes_read(), 64u);
  EXPECT_EQ(b.bytes_written(), 65u);
}

TEST(ReuseFifo, FifoOrderAndCapacity) {
  ReuseFifo f(2);
  EXPECT_TRUE(f.push(1, 10));
  EXPECT_TRUE(f.push(2, 20));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.push(3, 30));
  std::uint64_t tag = 0;
  Bytes bytes = 0;
  EXPECT_TRUE(f.pop(tag, bytes));
  EXPECT_EQ(tag, 1u);
  EXPECT_EQ(bytes, 10u);
  EXPECT_TRUE(f.pop(tag, bytes));
  EXPECT_FALSE(f.pop(tag, bytes));
  EXPECT_EQ(f.peak_occupancy(), 2u);
}

// ---------------------------------------------------------------------- ppu

TEST(Ppu, FunctionalActivations) {
  Ppu ppu{PpuParams{}};
  const gnn::Vector x{-2.0, 0.5};
  EXPECT_DOUBLE_EQ(ppu.apply(Activation::kRelu, x)[0], 0.0);
  EXPECT_DOUBLE_EQ(ppu.apply(Activation::kNone, x)[1], 0.5);
  const auto sm = ppu.apply(Activation::kSoftmax, x);
  EXPECT_NEAR(sm[0] + sm[1], 1.0, 1e-12);
}

TEST(Ppu, CycleCosts) {
  PpuParams p;
  p.lanes = 4;
  p.softmax_overhead = 4;
  Ppu ppu{p};
  EXPECT_EQ(ppu.activation_cycles(Activation::kNone, 100), 0u);
  EXPECT_EQ(ppu.activation_cycles(Activation::kRelu, 8), 2u);
  EXPECT_EQ(ppu.activation_cycles(Activation::kSoftmax, 8), 2u * 2 + 4);
  EXPECT_EQ(ppu.concat_cycles(10), 3u);
}

// ------------------------------------------------------------- PE component

TEST(PeModel, ExecutesTasksSeriallyWithCallbacks) {
  PeModelParams params;
  PeModel pe("pe0", params);
  sim::Simulator s;
  s.add(&pe);

  std::vector<std::pair<std::uint64_t, Cycle>> done;
  pe.set_completion_callback(
      [&](std::uint64_t tag, Cycle at) { done.emplace_back(tag, at); });

  PeTask t1;
  t1.op = {PeConfigKind::kMatVec, 16, 4};
  t1.tag = 1;
  PeTask t2;
  t2.op = {PeConfigKind::kMatVec, 16, 4};
  t2.tag = 2;
  pe.submit(t1);
  pe.submit(t2);
  s.run_until_idle(10'000);

  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 1u);
  EXPECT_EQ(done[1].first, 2u);
  EXPECT_GT(done[1].second, done[0].second);
  // Second task needs no reconfiguration, so it finishes faster.
  const Cycle d1 = done[0].second;
  const Cycle d2 = done[1].second - done[0].second;
  EXPECT_LT(d2, d1);
  EXPECT_EQ(pe.stats().tasks_completed, 2u);
  EXPECT_GT(pe.stats().busy_cycles, 0u);
  EXPECT_EQ(pe.stats().energy.fp_multiplies, 128u);
}

TEST(PeModel, AccountsBufferTrafficEnergy) {
  PeModelParams params;
  PeModel pe("pe0", params);
  sim::Simulator s;
  s.add(&pe);
  PeTask t;
  t.op = {PeConfigKind::kAccumulate, 32, 1};
  t.buffer_read_bytes = 256;
  t.buffer_write_bytes = 256;
  pe.submit(t);
  s.run_until_idle(10'000);
  EXPECT_EQ(pe.stats().energy.sram_large_bytes, 512u);
  EXPECT_EQ(pe.bank_buffer().bytes_read(), 256u);
}

TEST(PeModel, IdleSemantics) {
  PeModelParams params;
  PeModel pe("pe0", params);
  EXPECT_TRUE(pe.idle());
  PeTask t;
  t.op = {PeConfigKind::kScalarVec, 8, 1};
  pe.submit(t);
  EXPECT_FALSE(pe.idle());
  sim::Simulator s;
  s.add(&pe);
  s.run_until_idle(1000);
  EXPECT_TRUE(pe.idle());
}

TEST(PeModel, StaticTaskCyclesMatchesDynamic) {
  PeModelParams params;
  PeTask t;
  t.op = {PeConfigKind::kMatVec, 32, 8};
  t.post_activation = Activation::kRelu;
  const Cycle expected =
      PeModel::task_cycles(t, params, PeConfigKind::kBypass);

  PeModel pe("pe0", params);
  sim::Simulator s;
  s.add(&pe);
  Cycle finished = 0;
  pe.set_completion_callback([&](std::uint64_t, Cycle at) { finished = at; });
  pe.submit(t);
  s.run_until_idle(10'000);
  // Task starts on the first tick (cycle 0) and completes `expected` later.
  EXPECT_EQ(finished, expected);
}

}  // namespace
}  // namespace aurora::pe
