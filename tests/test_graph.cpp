// Unit and property tests for the graph substrate.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/components.hpp"
#include "graph/reorder.hpp"
#include "graph/tiling.hpp"

namespace aurora::graph {
namespace {

TEST(CsrBuilder, DeduplicatesAndSorts) {
  CsrBuilder b(4);
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  b.add_edge(0, 2);  // duplicate
  b.add_edge(0, 0);  // self loop dropped
  b.add_edge(3, 1);
  const CsrGraph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(nb[1], 2u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(CsrBuilder, UndirectedAddsBothDirections) {
  CsrBuilder b(3);
  b.add_undirected_edge(0, 2);
  const CsrGraph g = std::move(b).build();
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(CsrGraph, ValidateRejectsBadStructure) {
  // Unsorted columns.
  EXPECT_THROW(CsrGraph({0, 2}, {1, 0}), Error);
  // Out-of-range neighbor.
  EXPECT_THROW(CsrGraph({0, 1}, {5}), Error);
  // row_ptr/col mismatch.
  EXPECT_THROW(CsrGraph({0, 2}, {1}), Error);
}

TEST(CsrGraph, EdgeIdsAreCsrPositions) {
  CsrBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const CsrGraph g = std::move(b).build();
  EXPECT_EQ(g.edge_begin(0), 0u);
  EXPECT_EQ(g.edge_end(0), 2u);
  EXPECT_EQ(g.edge_begin(1), 2u);
  EXPECT_EQ(g.edge_end(2), 3u);
}

TEST(Generators, ErdosRenyiHasRequestedEdges) {
  Rng rng(1);
  const CsrGraph g = generate_erdos_renyi(100, 300, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 600u);  // directed count
  g.validate();
}

TEST(Generators, StarDegrees) {
  const CsrGraph g = generate_star(10);
  EXPECT_EQ(g.degree(0), 9u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, RingDegrees) {
  const CsrGraph g = generate_ring(8);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(g.num_edges(), 16u);
}

TEST(Generators, GridStructure) {
  const CsrGraph g = generate_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // corner (0,0) has degree 2; interior (1,1) has degree 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(5), 4u);
  EXPECT_EQ(g.num_edges(), 2u * (3 * 3 + 2 * 4));
}

TEST(Generators, PowerLawIsSkewed) {
  Rng rng(2);
  PowerLawParams p;
  p.n = 2000;
  p.undirected_edges = 8000;
  p.alpha = 2.2;
  const CsrGraph g = generate_power_law(p, rng);
  g.validate();
  const DegreeStats s = compute_degree_stats(g);
  // Heavy tail: max degree far above mean, strong inequality.
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.mean_degree);
  EXPECT_GT(s.gini, 0.25);
}

TEST(Generators, PowerLawDeterministicInSeed) {
  PowerLawParams p;
  p.n = 500;
  p.undirected_edges = 1500;
  Rng r1(9), r2(9);
  const CsrGraph a = generate_power_law(p, r1);
  const CsrGraph b = generate_power_law(p, r2);
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_EQ(a.col_idx(), b.col_idx());
}

TEST(DegreeStats, HandComputedValues) {
  const CsrGraph g = generate_star(5);  // degrees 4,1,1,1,1
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 8.0 / 5.0);
}

TEST(DegreeStats, GiniZeroForRegularGraph) {
  const CsrGraph g = generate_ring(16);
  EXPECT_NEAR(compute_degree_stats(g).gini, 0.0, 1e-12);
}

TEST(VerticesByDegree, OrderAndTopK) {
  const CsrGraph g = generate_star(6);
  const auto all = vertices_by_degree(g);
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0], 0u);  // the hub
  const auto top2 = vertices_by_degree(g, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 0u);
  EXPECT_EQ(top2[1], 1u);  // tie broken by ascending id
}

class DatasetTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetTest, ScaledInstanceMatchesSpecShape) {
  const DatasetId id = GetParam();
  const DatasetSpec& spec = dataset_spec(id);
  const Dataset ds = make_dataset(id, 0.02);
  ds.graph.validate();
  EXPECT_GT(ds.num_vertices(), 0u);
  EXPECT_LE(ds.num_vertices(), spec.num_vertices);
  // Feature metadata is never scaled.
  EXPECT_EQ(ds.spec.feature_dim, spec.feature_dim);
  EXPECT_EQ(ds.spec.num_classes, spec.num_classes);
  EXPECT_EQ(ds.feature_bytes(8), static_cast<Bytes>(spec.feature_dim) * 8);
}

TEST_P(DatasetTest, DeterministicInSeed) {
  const Dataset a = make_dataset(GetParam(), 0.01, 5);
  const Dataset b = make_dataset(GetParam(), 0.01, 5);
  EXPECT_EQ(a.graph.row_ptr(), b.graph.row_ptr());
  EXPECT_EQ(a.graph.col_idx(), b.graph.col_idx());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::ValuesIn(kAllDatasets),
                         [](const auto& param_info) {
                           return std::string(dataset_name(param_info.param));
                         });

TEST(Datasets, FullScaleCoraMatchesPublishedSizes) {
  const Dataset ds = make_dataset(DatasetId::kCora, 1.0);
  EXPECT_EQ(ds.num_vertices(), 2708u);
  // Generator hits the undirected target exactly; directed count = 2x.
  EXPECT_EQ(ds.num_edges(), 10556u);
}

TEST(Datasets, RedditIsDensest) {
  const Dataset reddit = make_dataset(DatasetId::kReddit, 0.002);
  const Dataset cora = make_dataset(DatasetId::kCora, 0.2);
  EXPECT_GT(reddit.degree_stats.mean_degree, cora.degree_stats.mean_degree);
}

TEST(Datasets, RejectsBadScale) {
  EXPECT_THROW(make_dataset(DatasetId::kCora, 0.0), Error);
  EXPECT_THROW(make_dataset(DatasetId::kCora, 1.5), Error);
}

TEST(Tiling, SingleTileWhenEverythingFits) {
  Rng rng(3);
  const CsrGraph g = generate_erdos_renyi(50, 100, rng);
  TilingParams p;
  p.capacity_bytes = 1 << 30;
  p.feature_bytes = 64;
  const Tiling t = tile_graph(g, p);
  EXPECT_EQ(t.num_tiles(), 1u);
  EXPECT_EQ(t.tiles[0].num_cut_edges, 0u);
  EXPECT_EQ(t.tiles[0].num_halo_vertices, 0u);
  EXPECT_EQ(t.tiles[0].num_edges, g.num_edges());
}

TEST(Tiling, TilesCoverAllVerticesWithoutOverlap) {
  Rng rng(4);
  PowerLawParams gp;
  gp.n = 400;
  gp.undirected_edges = 1600;
  const CsrGraph g = generate_power_law(gp, rng);
  TilingParams p;
  p.capacity_bytes = 16 * 1024;
  p.feature_bytes = 128;
  const Tiling t = tile_graph(g, p);
  EXPECT_GT(t.num_tiles(), 1u);
  VertexId covered = 0;
  EdgeId edges = 0;
  for (const auto& tile : t.tiles) {
    EXPECT_EQ(tile.vertex_begin, covered);
    covered = tile.vertex_end;
    edges += tile.num_edges;
  }
  EXPECT_EQ(covered, g.num_vertices());
  EXPECT_EQ(edges, g.num_edges());
}

TEST(Tiling, CutEdgesMatchBruteForce) {
  Rng rng(5);
  const CsrGraph g = generate_erdos_renyi(120, 500, rng);
  TilingParams p;
  p.capacity_bytes = 8 * 1024;
  p.feature_bytes = 96;
  const Tiling t = tile_graph(g, p);
  for (const auto& tile : t.tiles) {
    EdgeId cut = 0;
    std::set<VertexId> halo;
    for (VertexId v = tile.vertex_begin; v < tile.vertex_end; ++v) {
      for (VertexId u : g.neighbors(v)) {
        if (u < tile.vertex_begin || u >= tile.vertex_end) {
          ++cut;
          halo.insert(u);
        }
      }
    }
    EXPECT_EQ(tile.num_cut_edges, cut);
    EXPECT_EQ(tile.num_halo_vertices, halo.size());
  }
}

TEST(Tiling, RespectsCapacity) {
  Rng rng(6);
  const CsrGraph g = generate_erdos_renyi(200, 800, rng);
  TilingParams p;
  p.capacity_bytes = 24 * 1024;
  p.feature_bytes = 64;
  const Tiling t = tile_graph(g, p);
  for (const auto& tile : t.tiles) {
    // Multi-vertex tiles must fit; a single oversized vertex would have
    // thrown during construction.
    if (tile.num_vertices() > 1) {
      EXPECT_LE(tile_footprint_bytes(tile, p), p.capacity_bytes);
    }
  }
}

TEST(Tiling, OversizedVertexGetsItsOwnTile) {
  // The hub's 99 halo features exceed capacity; it is isolated in a tile of
  // its own (halo streamed in passes) instead of failing the run.
  const CsrGraph g = generate_star(100);
  TilingParams p;
  p.capacity_bytes = 256;
  p.feature_bytes = 64;
  const Tiling t = tile_graph(g, p);
  EXPECT_EQ(t.tiles.front().num_vertices(), 1u);
  EXPECT_EQ(t.tiles.back().vertex_end, g.num_vertices());
}

TEST(Tiling, SmallerCapacityNeverProducesFewerTiles) {
  Rng rng(7);
  const CsrGraph g = generate_erdos_renyi(300, 1200, rng);
  TilingParams big, small;
  big.feature_bytes = small.feature_bytes = 64;
  big.capacity_bytes = 64 * 1024;
  small.capacity_bytes = 16 * 1024;
  EXPECT_LE(tile_graph(g, big).num_tiles(), tile_graph(g, small).num_tiles());
}


// ------------------------------------------------------- R-MAT + reordering

TEST(Rmat, GeneratesPowerLawGraph) {
  Rng rng(44);
  graph::RmatParams p;
  p.scale = 10;
  p.undirected_edges = 4000;
  const auto g = graph::generate_rmat(p, rng);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 1024u);
  const auto s = graph::compute_degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.mean_degree);
  EXPECT_GT(s.gini, 0.3);
}

TEST(Rmat, RejectsBadQuadrants) {
  Rng rng(1);
  graph::RmatParams p;
  p.scale = 8;
  p.undirected_edges = 100;
  p.a = 0.5;
  p.b = 0.3;
  p.c = 0.3;  // d < 0
  EXPECT_THROW((void)graph::generate_rmat(p, rng), Error);
}

TEST(Reorder, BfsOrderIsPermutationCoveringAllComponents) {
  Rng rng(8);
  // Two disconnected halves.
  graph::CsrBuilder b(20);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(10, 11);
  const auto g = std::move(b).build();
  const auto order = graph::bfs_order(g, 0);
  ASSERT_EQ(order.size(), 20u);
  std::set<VertexId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 20u);
  EXPECT_EQ(order[0], 0u);
}

TEST(Reorder, ApplyOrderPreservesStructure) {
  Rng rng(9);
  const auto g = graph::generate_erdos_renyi(60, 150, rng);
  auto order = graph::bfs_order(g);
  const auto h = graph::apply_order(g, order);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Degree multiset is invariant under renumbering.
  std::vector<EdgeId> dg, dh;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
  // Edges map through the renumbering: spot-check adjacency of new id 0.
  EXPECT_EQ(h.degree(0), g.degree(order[0]));
}

TEST(Reorder, ApplyOrderRejectsNonPermutation) {
  const auto g = graph::generate_star(5);
  std::vector<VertexId> bad = {0, 0, 1, 2, 3};
  EXPECT_THROW((void)graph::apply_order(g, bad), Error);
}

TEST(Reorder, BfsImprovesLocalityOnRmat) {
  Rng rng(10);
  graph::RmatParams p;
  p.scale = 11;
  p.undirected_edges = 8000;
  const auto g = graph::generate_rmat(p, rng);
  const auto reordered = graph::apply_order(g, graph::bfs_order(g));
  const VertexId window = g.num_vertices() / 25;
  EXPECT_GT(graph::locality_score(reordered, window),
            graph::locality_score(g, window));
  EXPECT_LT(graph::mean_id_distance(reordered), graph::mean_id_distance(g));
}

TEST(Reorder, DegreeOrderPutsHubsFirst) {
  const auto g = graph::generate_star(10);
  const auto order = graph::degree_order(g);
  EXPECT_EQ(order[0], 0u);  // the hub
}

TEST(Reorder, LocalityScoreBounds) {
  const auto ring = graph::generate_ring(32);
  EXPECT_DOUBLE_EQ(graph::locality_score(ring, 32), 1.0);
  EXPECT_GT(graph::locality_score(ring, 1), 0.9);  // all but the wrap edge
}


TEST(Components, CountsAndSizes) {
  graph::CsrBuilder b(10);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(4, 5);
  // 3, 6, 7, 8, 9 isolated.
  const auto g = std::move(b).build();
  const auto stats = graph::connected_components(g);
  EXPECT_EQ(stats.num_components, 7u);  // {0,1,2}, {4,5}, five singletons
  EXPECT_EQ(stats.largest_component, 3u);
  EXPECT_EQ(stats.isolated_vertices, 5u);
  EXPECT_EQ(stats.component_of[0], stats.component_of[2]);
  EXPECT_NE(stats.component_of[0], stats.component_of[4]);
}

TEST(Components, DirectedEdgesStillJoin) {
  graph::CsrBuilder b(3);
  b.add_edge(0, 1);  // one direction only
  b.add_edge(2, 1);
  const auto g = std::move(b).build();
  const auto stats = graph::connected_components(g);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.largest_component, 3u);
}

TEST(Components, SingleComponentRing) {
  const auto stats =
      graph::connected_components(graph::generate_ring(12));
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.largest_component, 12u);
  EXPECT_EQ(stats.isolated_vertices, 0u);
}

// Degenerate-shape coverage: zero-degree vertices, self loops and
// single-vertex graphs must flow through every CSR helper without special
// casing (dynamic workloads routinely produce them as sampled mini-batches).

TEST(CsrEdgeCases, ZeroDegreeVerticesSurviveHelpers) {
  // Vertices 0 and 3 are isolated; 1-2 carry the only edge.
  CsrBuilder b(4);
  b.add_undirected_edge(1, 2);
  const CsrGraph g = std::move(b).build();
  g.validate();
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(3), 0u);

  // Tiling covers isolated vertices (they still occupy feature capacity).
  TilingParams tp;
  tp.capacity_bytes = 64;
  tp.feature_bytes = 16;
  const auto tiling = tile_graph(g, tp);
  VertexId covered = 0;
  for (const auto& tile : tiling.tiles) {
    covered += tile.vertex_end - tile.vertex_begin;
  }
  EXPECT_EQ(covered, 4u);

  // Edge-balanced ranges still emit exact boundaries.
  const auto bounds = balanced_edge_ranges(g, 2);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 4u);

  // Reorderings are full permutations: isolated vertices are not dropped.
  for (const auto& order : {bfs_order(g, 0), degree_order(g)}) {
    std::set<VertexId> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), 4u);
    const CsrGraph h = apply_order(g, order);
    EXPECT_EQ(h.num_vertices(), 4u);
    EXPECT_EQ(h.num_edges(), 2u);
    h.validate();
  }
  EXPECT_GE(locality_score(g, 1), 0.0);
}

TEST(CsrEdgeCases, BuilderDropsSelfLoopsEverywhere) {
  CsrBuilder b(3);
  b.add_edge(0, 0);
  b.add_undirected_edge(1, 1);
  b.add_undirected_edge(1, 2);
  const CsrGraph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(1, 1));
  g.validate();  // validate() rejects self loops, so none survived
}

TEST(CsrEdgeCases, SingleVertexGraphAcrossHelpers) {
  const CsrGraph g = std::move(CsrBuilder(1)).build();
  g.validate();
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());

  TilingParams tp;
  tp.capacity_bytes = 1024;
  tp.feature_bytes = 16;
  const auto tiling = tile_graph(g, tp);
  ASSERT_EQ(tiling.tiles.size(), 1u);
  EXPECT_EQ(tiling.tiles[0].vertex_end, 1u);
  EXPECT_EQ(tiling.tiles[0].num_cut_edges, 0u);

  const auto bounds = balanced_edge_ranges(g, 1);
  EXPECT_EQ(bounds, (std::vector<VertexId>{0, 1}));

  EXPECT_EQ(bfs_order(g, 0), (std::vector<VertexId>{0}));
  EXPECT_EQ(degree_order(g), (std::vector<VertexId>{0}));
  const CsrGraph h = apply_order(g, {0});
  EXPECT_EQ(h.num_vertices(), 1u);
  EXPECT_EQ(h.num_edges(), 0u);

  const auto stats = connected_components(g);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.isolated_vertices, 1u);
}

}  // namespace
}  // namespace aurora::graph
